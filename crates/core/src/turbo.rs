//! TurboSMARTS: checkpointed samples consumed in random order until the
//! Gaussian confidence bound claims convergence (Wenisch et al., ISPASS
//! 2006).

use pgss_cpu::{MachineConfig, ModeOps};
use pgss_stats::{ConfidenceInterval, DetRng, Welford, Z_997};
use pgss_workloads::Workload;

use crate::driver::RunTrace;
use crate::estimate::{Estimate, Technique};
use crate::smarts::Smarts;

/// TurboSMARTS: the SMARTS sample *population* is captured once into a
/// checkpoint ("live-point") library; at estimation time, samples are
/// simulated in random order until a `z·s/√n` confidence interval is within
/// `target_rel` of the mean CPI. Only consumed samples are charged as
/// detailed simulation — the paper's accounting.
///
/// The stopping rule assumes the sample population is Gaussian. Programs
/// with phases have *polymodal* populations, so the claimed bound is
/// routinely violated — exactly the pathology the paper demonstrates and
/// PGSS-Sim fixes by stratifying per phase.
///
/// # Example
///
/// ```no_run
/// use pgss::{Technique, TurboSmarts};
///
/// let w = pgss_workloads::wupwise(0.05);
/// let est = TurboSmarts::new().run(&w);
/// // Far fewer samples than full SMARTS would take…
/// assert!(est.samples > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TurboSmarts {
    /// The underlying SMARTS sampling parameters (population definition).
    pub smarts: Smarts,
    /// Relative confidence target (the paper: 0.03 for ±3 %).
    pub target_rel: f64,
    /// z-score (the paper: 3.0 for 99.7 % confidence).
    pub z: f64,
    /// Minimum consumed samples before the bound may stop sampling.
    pub min_samples: u64,
    /// Seed for the random consumption order.
    pub seed: u64,
}

impl Default for TurboSmarts {
    fn default() -> TurboSmarts {
        TurboSmarts {
            smarts: Smarts::default(),
            target_rel: 0.03,
            z: Z_997,
            min_samples: 8,
            seed: 0x7572_626F,
        }
    }
}

impl TurboSmarts {
    /// The paper's configuration: ±3 % at 99.7 % confidence over the
    /// default SMARTS population.
    pub fn new() -> TurboSmarts {
        TurboSmarts::default()
    }
}

impl Technique for TurboSmarts {
    fn name(&self) -> String {
        format!(
            "TurboSMARTS({}k/{:.0}%)",
            self.smarts.period_ops / 1000,
            self.target_rel * 100.0
        )
    }

    fn run_with(&self, workload: &Workload, config: &MachineConfig) -> Estimate {
        self.run_traced(workload, config).0
    }

    fn run_traced(&self, workload: &Workload, config: &MachineConfig) -> (Estimate, RunTrace) {
        let (population, _, mut trace) = self.smarts.collect_population(workload, config);
        assert!(
            !population.is_empty(),
            "workload too short for even one sample"
        );
        let mut order: Vec<usize> = (0..population.len()).collect();
        DetRng::seed_from_u64(self.seed).shuffle(&mut order);

        let mut w = Welford::new();
        let mut consumed = 0u64;
        for &i in &order {
            w.push(population[i]);
            consumed += 1;
            if consumed >= self.min_samples
                && ConfidenceInterval::from_welford(&w, self.z).meets_relative(self.target_rel)
            {
                break;
            }
        }

        // Cost accounting: each consumed live-point costs its warming +
        // measured instructions of detailed simulation. Checkpoint-library
        // creation is offline and amortised (the paper's accounting); the
        // functional column is reported as zero because checkpoint loading
        // replaces fast-forwarding.
        let mode_ops = ModeOps {
            detailed_warming: consumed * self.smarts.warm_ops,
            detailed_measured: consumed * self.smarts.unit_ops,
            ..Default::default()
        };
        // The trace mirrors the accounting: of the collected population,
        // `consumed` samples were actually charged; the rest were skipped
        // because the confidence bound closed first.
        trace.samples_taken = consumed;
        trace.skipped_ci_met = population.len() as u64 - consumed;
        (
            Estimate {
                ipc: 1.0 / w.mean(),
                mode_ops,
                samples: consumed,
                phases: None,
            },
            trace,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::relative_error;
    use crate::FullDetailed;

    #[test]
    fn consumes_fewer_samples_than_population() {
        // A perfectly uniform compute workload: every sample has the same
        // CPI, so the confidence bound closes at min_samples.
        let mut b = pgss_workloads::WorkloadBuilder::new("uniform", 3);
        let seg = b.add_segment(pgss_workloads::Kernel::ComputeInt {
            chains: 4,
            ops_per_chain: 3,
        });
        b.run(seg, 3_000_000);
        let w = b.finish();
        let smarts = Smarts {
            period_ops: 20_000,
            ..Smarts::default()
        };
        let full = smarts.run(&w);
        let turbo = TurboSmarts {
            smarts,
            ..TurboSmarts::default()
        }
        .run(&w);
        assert!(
            turbo.samples < full.samples,
            "turbo consumed {} of {} samples",
            turbo.samples,
            full.samples
        );
        assert!(turbo.detailed_ops() < full.detailed_ops());
    }

    #[test]
    fn stable_workload_converges_fast_and_accurately() {
        let w = pgss_workloads::twolf(0.02);
        let truth = FullDetailed::new().ground_truth(&w);
        let smarts = Smarts {
            period_ops: 50_000,
            ..Smarts::default()
        };
        let est = TurboSmarts {
            smarts,
            ..TurboSmarts::default()
        }
        .run(&w);
        // twolf's tiny variance means the bound is honest here.
        let err = relative_error(est.ipc, truth.ipc);
        assert!(err < 0.1, "error {err:.4}");
        assert!(est.samples < 200, "needed {} samples", est.samples);
    }

    #[test]
    fn deterministic_given_seed() {
        let w = pgss_workloads::gzip(0.01);
        let a = TurboSmarts::new().run(&w);
        let b = TurboSmarts::new().run(&w);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_changes_consumption_order() {
        let w = pgss_workloads::gzip(0.01);
        let a = TurboSmarts::new().run(&w);
        let b = TurboSmarts {
            seed: 999,
            ..TurboSmarts::new()
        }
        .run(&w);
        // Same population, different order: sample counts usually differ on
        // a phased workload; at minimum the estimates must both be finite.
        assert!(a.ipc.is_finite() && b.ipc.is_finite());
    }
}
