//! TurboSMARTS: checkpointed samples consumed in random order until the
//! Gaussian confidence bound claims convergence (Wenisch et al., ISPASS
//! 2006).

use pgss_cpu::{MachineConfig, Mode, ModeOps};
use pgss_stats::{ConfidenceInterval, DetRng, Welford, Z_95, Z_997};
use pgss_workloads::Workload;

use crate::ckpt::SimContext;
use crate::driver::{RunTrace, Segment, SimDriver, Track};
use crate::estimate::{ipc_interval_from_cpi, Estimate, Technique};
use crate::smarts::Smarts;

/// TurboSMARTS: the SMARTS sample *population* is materialised as live
/// checkpoints — a [`crate::driver::DriverSnapshot`] of the functionally
/// warmed machine at each sample's start — and samples are simulated from
/// restored checkpoints, in random order, until a `z·s/√n` confidence
/// interval is within `target_rel` of the mean CPI. Only consumed samples
/// are charged as detailed simulation — the paper's accounting, with the
/// checkpoint-library creation treated as amortised offline work.
///
/// Unlike an eager implementation that simulates the whole population
/// up front, checkpoints are captured lazily in doubling batches of the
/// random consumption order, so a run that converges after `k` samples
/// simulates `O(k)` samples in detail rather than all of them. Restores
/// are bit-exact, so the estimate is identical to one computed from
/// inline SMARTS samples.
///
/// The stopping rule assumes the sample population is Gaussian. Programs
/// with phases have *polymodal* populations, so the claimed bound is
/// routinely violated — exactly the pathology the paper demonstrates and
/// PGSS-Sim fixes by stratifying per phase.
///
/// # Example
///
/// ```no_run
/// use pgss::{Technique, TurboSmarts};
///
/// let w = pgss_workloads::wupwise(0.05);
/// let est = TurboSmarts::new().run(&w);
/// // Far fewer samples than full SMARTS would take…
/// assert!(est.samples > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TurboSmarts {
    /// The underlying SMARTS sampling parameters (population definition).
    pub smarts: Smarts,
    /// Relative confidence target (the paper: 0.03 for ±3 %).
    pub target_rel: f64,
    /// z-score (the paper: 3.0 for 99.7 % confidence).
    pub z: f64,
    /// Minimum consumed samples before the bound may stop sampling.
    pub min_samples: u64,
    /// Seed for the random consumption order.
    pub seed: u64,
}

impl Default for TurboSmarts {
    fn default() -> TurboSmarts {
        TurboSmarts {
            smarts: Smarts::default(),
            target_rel: 0.03,
            z: Z_997,
            min_samples: 8,
            seed: 0x7572_626F,
        }
    }
}

impl TurboSmarts {
    /// The paper's configuration: ±3 % at 99.7 % confidence over the
    /// default SMARTS population.
    pub fn new() -> TurboSmarts {
        TurboSmarts::default()
    }
}

impl Technique for TurboSmarts {
    fn name(&self) -> String {
        format!(
            "TurboSMARTS({}k/{:.0}%)",
            self.smarts.period_ops / 1000,
            self.target_rel * 100.0
        )
    }

    fn run_with(&self, workload: &Workload, config: &MachineConfig) -> Estimate {
        self.run_traced(workload, config).0
    }

    fn run_traced(&self, workload: &Workload, config: &MachineConfig) -> (Estimate, RunTrace) {
        self.run_traced_ctx(workload, config, &SimContext::none())
    }

    fn run_traced_ctx(
        &self,
        workload: &Workload,
        config: &MachineConfig,
        ctx: &SimContext,
    ) -> (Estimate, RunTrace) {
        let s = self.smarts;
        assert!(s.unit_ops > 0, "unit_ops must be positive");
        assert!(
            s.period_ops > s.unit_ops + s.warm_ops,
            "period must exceed warm + unit ({} + {})",
            s.warm_ops,
            s.unit_ops
        );
        let attach = |d: &mut SimDriver| ctx.bind(d);

        // One functional pass determines the program length, and with it
        // the sample population: sample i starts (warming) at i·period
        // and is in the population iff its measured unit fits before the
        // halt. With a campaign ladder attached this pass is almost
        // entirely jumped.
        let mut length_pass = SimDriver::new(workload, config, Track::None);
        attach(&mut length_pass);
        length_pass.execute(Segment::new(Mode::Functional, u64::MAX));
        let total = length_pass.retired();
        let mut trace = *length_pass.trace();
        let span = s.warm_ops + s.unit_ops;
        let population = if total >= span {
            (total - span) / s.period_ops + 1
        } else {
            0
        };
        assert!(population > 0, "workload too short for even one sample");

        let mut order: Vec<usize> = (0..population as usize).collect();
        DetRng::seed_from_u64(self.seed).shuffle(&mut order);

        // Consume the shuffled order in doubling batches. Each batch is
        // captured in ascending program order — one functional walk
        // snapshotting at each sample start, each checkpoint replayed
        // (restore → warm → measure) immediately so only one snapshot is
        // ever in flight — then its CPIs are fed to the estimator in the
        // shuffled order, stopping as soon as the bound closes.
        let mut cpis: Vec<Option<f64>> = vec![None; population as usize];
        let mut w = Welford::new();
        let mut consumed = 0u64;
        let mut issued = 0usize;
        'rounds: while issued < order.len() {
            let want = if issued == 0 {
                (self.min_samples.max(1) as usize).min(order.len())
            } else {
                issued.min(order.len() - issued)
            };
            let round = &order[issued..issued + want];
            let mut positions: Vec<usize> = round.to_vec();
            positions.sort_unstable();
            let mut capture = SimDriver::new(workload, config, Track::None);
            attach(&mut capture);
            for &i in &positions {
                let pos = i as u64 * s.period_ops;
                if pos > capture.retired() {
                    capture.execute(Segment::new(Mode::Functional, pos - capture.retired()));
                }
                debug_assert_eq!(capture.retired(), pos);
                let checkpoint = capture.snapshot();
                let mut replay =
                    SimDriver::from_snapshot(workload, config, Track::None, &checkpoint);
                attach(&mut replay);
                replay.execute(Segment::new(Mode::DetailedWarming, s.warm_ops));
                let measured = replay.execute(Segment::new(Mode::DetailedMeasured, s.unit_ops));
                assert!(measured.complete(), "population samples fit before halt");
                cpis[i] = Some(measured.cpi());
                trace.merge(replay.trace());
            }
            trace.merge(capture.trace());
            for &i in round {
                w.push(cpis[i].expect("computed this round"));
                consumed += 1;
                if consumed >= self.min_samples
                    && ConfidenceInterval::from_welford(&w, self.z).meets_relative(self.target_rel)
                {
                    break 'rounds;
                }
            }
            issued += want;
        }

        // Cost accounting: each consumed live-point costs its warming +
        // measured instructions of detailed simulation. Checkpoint-library
        // creation is offline and amortised (the paper's accounting); the
        // functional column is reported as zero because checkpoint loading
        // replaces fast-forwarding.
        let mode_ops = ModeOps {
            detailed_warming: consumed * s.warm_ops,
            detailed_measured: consumed * s.unit_ops,
            ..Default::default()
        };
        // The trace mirrors the accounting: of the population, `consumed`
        // samples were actually charged; the rest were skipped because
        // the confidence bound closed first.
        trace.samples_taken = consumed;
        trace.skipped_ci_met = population - consumed;
        (
            Estimate {
                ipc: 1.0 / w.mean(),
                mode_ops,
                samples: consumed,
                phases: None,
                // Same statistical model as SMARTS (Gaussian over the
                // consumed CPI samples), reported at 95 % regardless of the
                // z the stopping rule targeted.
                ci: Some(ipc_interval_from_cpi(ConfidenceInterval::from_welford(
                    &w, Z_95,
                ))),
            },
            trace,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::relative_error;
    use crate::FullDetailed;

    #[test]
    fn consumes_fewer_samples_than_population() {
        // A perfectly uniform compute workload: every sample has the same
        // CPI, so the confidence bound closes at min_samples.
        let mut b = pgss_workloads::WorkloadBuilder::new("uniform", 3);
        let seg = b.add_segment(pgss_workloads::Kernel::ComputeInt {
            chains: 4,
            ops_per_chain: 3,
        });
        b.run(seg, 3_000_000);
        let w = b.finish();
        let smarts = Smarts {
            period_ops: 20_000,
            ..Smarts::default()
        };
        let full = smarts.run(&w);
        let turbo = TurboSmarts {
            smarts,
            ..TurboSmarts::default()
        }
        .run(&w);
        assert!(
            turbo.samples < full.samples,
            "turbo consumed {} of {} samples",
            turbo.samples,
            full.samples
        );
        assert!(turbo.detailed_ops() < full.detailed_ops());
    }

    #[test]
    fn stable_workload_converges_fast_and_accurately() {
        let w = pgss_workloads::twolf(0.02);
        let truth = FullDetailed::new().ground_truth(&w);
        let smarts = Smarts {
            period_ops: 50_000,
            ..Smarts::default()
        };
        let est = TurboSmarts {
            smarts,
            ..TurboSmarts::default()
        }
        .run(&w);
        // twolf's tiny variance means the bound is honest here.
        let err = relative_error(est.ipc, truth.ipc);
        assert!(err < 0.1, "error {err:.4}");
        assert!(est.samples < 200, "needed {} samples", est.samples);
    }

    #[test]
    fn deterministic_given_seed() {
        let w = pgss_workloads::gzip(0.01);
        let a = TurboSmarts::new().run(&w);
        let b = TurboSmarts::new().run(&w);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_changes_consumption_order() {
        let w = pgss_workloads::gzip(0.01);
        let a = TurboSmarts::new().run(&w);
        let b = TurboSmarts {
            seed: 999,
            ..TurboSmarts::new()
        }
        .run(&w);
        // Same population, different order: sample counts usually differ on
        // a phased workload; at minimum the estimates must both be finite.
        assert!(a.ipc.is_finite() && b.ipc.is_finite());
    }

    #[test]
    fn matches_inline_smarts_population_mean_when_consuming_everything() {
        // Force full consumption with an unreachable confidence target:
        // the checkpoint-replayed population mean must equal the mean of
        // the same samples taken inline by SMARTS — the bit-exact restore
        // guarantee, observed end to end.
        let w = pgss_workloads::gzip(0.01);
        let smarts = Smarts {
            period_ops: 100_000,
            ..Smarts::default()
        };
        let (inline_cpis, _, _) =
            smarts.collect_population(&w, &MachineConfig::default(), &SimContext::none());
        let turbo = TurboSmarts {
            smarts,
            target_rel: 0.0,
            ..TurboSmarts::new()
        }
        .run(&w);
        assert_eq!(turbo.samples, inline_cpis.len() as u64);
        let mean: f64 = inline_cpis.iter().sum::<f64>() / inline_cpis.len() as f64;
        let wf: Welford = {
            let mut order: Vec<usize> = (0..inline_cpis.len()).collect();
            DetRng::seed_from_u64(TurboSmarts::new().seed).shuffle(&mut order);
            order.iter().map(|&i| inline_cpis[i]).collect()
        };
        assert_eq!(turbo.ipc.to_bits(), (1.0 / wf.mean()).to_bits());
        assert!((1.0 / turbo.ipc - mean).abs() < 1e-12);
    }
}
