//! Exhaustive detailed simulation: the ground truth.

use pgss_cpu::{MachineConfig, Mode};
use pgss_workloads::Workload;

use crate::driver::{
    Directive, RunTrace, SamplingPolicy, Segment, SegmentOutcome, SimDriver, Track,
};
use crate::estimate::{Estimate, GroundTruth, Technique};

/// Full cycle-level simulation of the entire workload.
///
/// This is what sampled simulation exists to avoid; the experiments run it
/// once per workload to obtain the reference IPC every estimate is judged
/// against.
///
/// # Example
///
/// ```no_run
/// use pgss::FullDetailed;
///
/// let w = pgss_workloads::twolf(0.05);
/// let truth = FullDetailed::new().ground_truth(&w);
/// assert!(truth.ipc > 0.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FullDetailed;

impl FullDetailed {
    /// Creates the technique.
    pub fn new() -> FullDetailed {
        FullDetailed
    }

    /// Runs the full simulation and returns the reference result.
    pub fn ground_truth(&self, workload: &Workload) -> GroundTruth {
        self.ground_truth_with(workload, &MachineConfig::default())
    }

    /// [`FullDetailed::ground_truth`] with a custom machine configuration.
    pub fn ground_truth_with(&self, workload: &Workload, config: &MachineConfig) -> GroundTruth {
        self.ground_truth_traced(workload, config).0
    }

    fn ground_truth_traced(
        &self,
        workload: &Workload,
        config: &MachineConfig,
    ) -> (GroundTruth, RunTrace) {
        let mut driver = SimDriver::new(workload, config, Track::None);
        let mut policy = ExhaustivePolicy {
            total_ops: 0,
            cycles: 0,
            done: false,
        };
        driver.run(&mut policy);
        assert!(policy.cycles > 0, "workload retired no instructions");
        let truth = GroundTruth {
            ipc: policy.total_ops as f64 / policy.cycles as f64,
            total_ops: policy.total_ops,
            cycles: policy.cycles,
        };
        (truth, *driver.trace())
    }
}

/// Detailed simulation in bounded chunks until the program halts, so
/// pathological schedules cannot hang the harness.
struct ExhaustivePolicy {
    total_ops: u64,
    cycles: u64,
    done: bool,
}

impl SamplingPolicy for ExhaustivePolicy {
    fn next(&mut self, _trace: &mut RunTrace) -> Directive {
        if self.done {
            Directive::Finish
        } else {
            Directive::Run(Segment::new(Mode::DetailedMeasured, 1 << 24))
        }
    }

    fn observe(&mut self, outcome: &SegmentOutcome, _trace: &mut RunTrace) {
        self.total_ops += outcome.ops;
        self.cycles += outcome.cycles;
        if outcome.halted || outcome.ops == 0 {
            self.done = true;
        }
    }
}

impl Technique for FullDetailed {
    fn name(&self) -> String {
        "FullDetailed".to_string()
    }

    fn run_with(&self, workload: &Workload, config: &MachineConfig) -> Estimate {
        self.run_traced(workload, config).0
    }

    fn run_traced(&self, workload: &Workload, config: &MachineConfig) -> (Estimate, RunTrace) {
        let (truth, mut trace) = self.ground_truth_traced(workload, config);
        trace.samples_taken = 1;
        let estimate = Estimate {
            ipc: truth.ipc,
            mode_ops: pgss_cpu::ModeOps {
                detailed_measured: truth.total_ops,
                ..Default::default()
            },
            samples: 1,
            phases: None,
            // Exhaustive simulation has no sampling error to claim.
            ci: None,
        };
        (estimate, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_matches_direct_simulation() {
        let w = pgss_workloads::mesa(0.002);
        let truth = FullDetailed::new().ground_truth(&w);
        let mut m = w.machine();
        let r = m.run(Mode::DetailedMeasured, u64::MAX);
        assert!(r.halted);
        assert_eq!(truth.total_ops, r.ops);
        assert!((truth.ipc - r.ipc()).abs() < 1e-9);
    }

    #[test]
    fn technique_estimate_is_exact() {
        let w = pgss_workloads::twolf(0.002);
        let truth = FullDetailed::new().ground_truth(&w);
        let est = FullDetailed::new().run(&w);
        assert_eq!(est.ipc, truth.ipc);
        assert_eq!(est.error_vs(&truth), 0.0);
        assert_eq!(est.detailed_ops(), truth.total_ops);
    }
}
