//! Exhaustive detailed simulation: the ground truth.

use pgss_cpu::{MachineConfig, Mode};
use pgss_workloads::Workload;

use crate::estimate::{Estimate, GroundTruth, Technique};

/// Full cycle-level simulation of the entire workload.
///
/// This is what sampled simulation exists to avoid; the experiments run it
/// once per workload to obtain the reference IPC every estimate is judged
/// against.
///
/// # Example
///
/// ```no_run
/// use pgss::FullDetailed;
///
/// let w = pgss_workloads::twolf(0.05);
/// let truth = FullDetailed::new().ground_truth(&w);
/// assert!(truth.ipc > 0.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FullDetailed;

impl FullDetailed {
    /// Creates the technique.
    pub fn new() -> FullDetailed {
        FullDetailed
    }

    /// Runs the full simulation and returns the reference result.
    pub fn ground_truth(&self, workload: &Workload) -> GroundTruth {
        self.ground_truth_with(workload, &MachineConfig::default())
    }

    /// [`FullDetailed::ground_truth`] with a custom machine configuration.
    pub fn ground_truth_with(&self, workload: &Workload, config: &MachineConfig) -> GroundTruth {
        let mut machine = workload.machine_with(*config);
        let mut total_ops = 0u64;
        let mut cycles = 0u64;
        loop {
            // Chunked so pathological schedules cannot hang the harness.
            let r = machine.run(Mode::DetailedMeasured, 1 << 24);
            total_ops += r.ops;
            cycles += r.cycles;
            if r.halted || r.ops == 0 {
                break;
            }
        }
        assert!(cycles > 0, "workload retired no instructions");
        GroundTruth { ipc: total_ops as f64 / cycles as f64, total_ops, cycles }
    }
}

impl Technique for FullDetailed {
    fn name(&self) -> String {
        "FullDetailed".to_string()
    }

    fn run_with(&self, workload: &Workload, config: &MachineConfig) -> Estimate {
        let truth = self.ground_truth_with(workload, config);
        Estimate {
            ipc: truth.ipc,
            mode_ops: pgss_cpu::ModeOps {
                detailed_measured: truth.total_ops,
                ..Default::default()
            },
            samples: 1,
            phases: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_matches_direct_simulation() {
        let w = pgss_workloads::mesa(0.002);
        let truth = FullDetailed::new().ground_truth(&w);
        let mut m = w.machine();
        let r = m.run(Mode::DetailedMeasured, u64::MAX);
        assert!(r.halted);
        assert_eq!(truth.total_ops, r.ops);
        assert!((truth.ipc - r.ipc()).abs() < 1e-9);
    }

    #[test]
    fn technique_estimate_is_exact() {
        let w = pgss_workloads::twolf(0.002);
        let truth = FullDetailed::new().ground_truth(&w);
        let est = FullDetailed::new().run(&w);
        assert_eq!(est.ipc, truth.ipc);
        assert_eq!(est.error_vs(&truth), 0.0);
        assert_eq!(est.detailed_ops(), truth.total_ops);
    }
}
