//! Ranked-set sampling with repeated subsampling (Ekman & Stenström,
//! ISPASS 2005): candidate intervals within each stratum are ranked by a
//! cheap concomitant, rank-selected representatives are detail-simulated,
//! and replicate estimates are averaged — the between-replicate variance
//! gives the confidence interval directly.

use std::collections::BTreeSet;

use pgss_cpu::{MachineConfig, Mode};
use pgss_stats::{replicate_ci, DetRng, Z_95};
use pgss_workloads::Workload;

use crate::ckpt::SimContext;
use crate::driver::{
    Directive, RunTrace, SamplingPolicy, Segment, SegmentOutcome, Signature, SimDriver, Track,
};
use crate::estimate::{Estimate, PhaseSummary, Technique};
use crate::phase::PhaseTable;
use crate::two_phase::PointReplayPolicy;

/// Ranked-set sampling over online phase strata:
///
/// 1. a **rank pass** opens every `ff_ops` interval with a short
///    detailed-warming probe whose CPI is the *concomitant* — a cheap,
///    noisy stand-in for the interval's true CPI — then finishes the
///    interval functionally while the signature tracker classifies it into
///    a stratum;
/// 2. for each of `replicates` **subsamples**, every stratum's occurrence
///    list is shuffled and partitioned into sets of `set_size`; each set is
///    ranked by concomitant and one member is selected at a rotating rank,
///    so across replicates every rank position is represented;
/// 3. the union of all selections is detail-simulated once (the machine is
///    deterministic, so re-measuring a re-selected interval would return
///    the identical CPI); each replicate's estimate composes its selected
///    CPIs by stratum weight;
/// 4. the final estimate is the replicate mean, with a 95 % interval from
///    the **between-replicate variance** ([`pgss_stats::replicate_ci`]) —
///    no within-stratum variance model needed.
///
/// Ranked selection buys variance reduction over random sampling whenever
/// the concomitant correlates with the true CPI; the statistical-validation
/// sweep checks whether that is enough to beat PGSS's budget at equal
/// coverage.
///
/// # Example
///
/// ```no_run
/// use pgss::{RankedSet, Technique};
///
/// let est = RankedSet::new().run(&pgss_workloads::gzip(0.05));
/// assert!(est.ci.is_some());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedSet {
    /// Stratification interval (the classifier's BBV period).
    pub ff_ops: u64,
    /// Phase-change threshold in radians.
    pub threshold_rad: f64,
    /// Detailed-warming probe opening each interval; its CPI is the
    /// ranking concomitant and its ops are charged as warming.
    pub probe_ops: u64,
    /// Measured detailed instructions per selected sample.
    pub unit_ops: u64,
    /// Detailed-warming instructions before each selected sample.
    pub warm_ops: u64,
    /// Ranked-set size `r`: candidates compared per selection.
    pub set_size: usize,
    /// Number of repeated subsamples averaged into the estimate.
    pub replicates: u64,
    /// Seed for the per-replicate shuffles.
    pub seed: u64,
    /// Seed choosing the five hashed-BBV address bits.
    pub hash_seed: u64,
    /// Phase-signature family the classifier runs on.
    pub signature: Signature,
}

impl Default for RankedSet {
    fn default() -> RankedSet {
        RankedSet {
            ff_ops: 1_000_000,
            threshold_rad: crate::threshold(0.05),
            probe_ops: 500,
            unit_ops: 1_000,
            warm_ops: 3_000,
            set_size: 2,
            replicates: 5,
            seed: 0x5253,
            hash_seed: 0x5047_5353,
            signature: Signature::Bbv,
        }
    }
}

impl RankedSet {
    /// The defaults above (1M-op strata, sets of 2, 5 replicates).
    pub fn new() -> RankedSet {
        RankedSet::default()
    }
}

/// The rank pass: a probe then the functional remainder per interval; the
/// BBV closes at the interval end so the signature covers both segments.
struct RankPolicy {
    ff_ops: u64,
    probe_ops: u64,
    table: PhaseTable,
    /// Stratum per complete interval.
    interval_phases: Vec<usize>,
    /// Concomitant (probe CPI) per complete interval.
    concomitants: Vec<f64>,
    /// Probe CPI awaiting its interval's close.
    pending: Option<f64>,
    done: bool,
}

impl SamplingPolicy for RankPolicy {
    fn next(&mut self, _trace: &mut RunTrace) -> Directive {
        if self.done {
            Directive::Finish
        } else if self.pending.is_none() {
            Directive::Run(Segment::new(Mode::DetailedWarming, self.probe_ops))
        } else {
            Directive::Run(Segment::with_bbv(
                Mode::Functional,
                self.ff_ops - self.probe_ops,
            ))
        }
    }

    fn observe(&mut self, outcome: &SegmentOutcome, trace: &mut RunTrace) {
        match outcome.segment.mode {
            Mode::DetailedWarming => {
                if !outcome.complete() {
                    self.done = true;
                    return;
                }
                self.pending = Some(outcome.cpi());
            }
            _ => {
                let probe_cpi = self.pending.take().expect("probe precedes each interval");
                if outcome.complete() {
                    let bbv = outcome.bbv.as_ref().expect("rank intervals close a BBV");
                    let c = self.table.classify(bbv.hashed(), self.ff_ops);
                    if c.created {
                        trace.phases_created += 1;
                    }
                    self.interval_phases.push(c.phase);
                    self.concomitants.push(probe_cpi);
                }
                if outcome.halted {
                    self.done = true;
                }
            }
        }
    }
}

impl Technique for RankedSet {
    fn name(&self) -> String {
        let period = if self.ff_ops.is_multiple_of(1_000_000) {
            format!("{}M", self.ff_ops / 1_000_000)
        } else {
            format!("{}k", self.ff_ops / 1_000)
        };
        format!(
            "RankedSet{}({}/r{}x{})",
            self.signature.name_suffix(),
            period,
            self.set_size,
            self.replicates
        )
    }

    fn run_with(&self, workload: &Workload, config: &MachineConfig) -> Estimate {
        self.run_traced(workload, config).0
    }

    fn run_traced(&self, workload: &Workload, config: &MachineConfig) -> (Estimate, RunTrace) {
        self.run_traced_ctx(workload, config, &SimContext::none())
    }

    fn tracks(&self) -> Vec<Track> {
        vec![self.signature.hashed_track(self.hash_seed), Track::None]
    }

    fn run_traced_ctx(
        &self,
        workload: &Workload,
        config: &MachineConfig,
        ctx: &SimContext,
    ) -> (Estimate, RunTrace) {
        assert!(
            self.probe_ops > 0 && self.probe_ops < self.ff_ops,
            "the probe must fit strictly inside an interval"
        );
        assert!(
            self.set_size >= 2 && self.replicates >= 2,
            "ranked-set sampling needs set_size >= 2 and replicates >= 2"
        );
        // Pass 1: probe + classify every interval.
        let mut rank = SimDriver::new(
            workload,
            config,
            self.signature.hashed_track(self.hash_seed),
        );
        ctx.bind(&mut rank);
        let mut rp = RankPolicy {
            ff_ops: self.ff_ops,
            probe_ops: self.probe_ops,
            table: PhaseTable::new(self.threshold_rad),
            interval_phases: Vec::new(),
            concomitants: Vec::new(),
            pending: None,
            done: false,
        };
        rank.run(&mut rp);
        let RankPolicy {
            table,
            interval_phases,
            concomitants,
            ..
        } = rp;
        assert!(
            !interval_phases.is_empty(),
            "workload shorter than one ranked-set interval"
        );
        let mut trace = *rank.trace();
        trace.phase_changes = table.changes();

        let num_strata = table.phases().len();
        let mut occurrences: Vec<Vec<usize>> = vec![Vec::new(); num_strata];
        for (i, &p) in interval_phases.iter().enumerate() {
            occurrences[p].push(i);
        }

        // Per-replicate ranked selections. The rotating rank
        // `(set index + replicate) % set_size` makes every rank position
        // appear across replicates even for strata with a single set.
        let mut rng = DetRng::seed_from_u64(self.seed);
        let mut selections: Vec<Vec<Vec<usize>>> = Vec::new(); // [replicate][stratum]
        for j in 0..self.replicates {
            let mut per_stratum = Vec::with_capacity(num_strata);
            for occ in &occurrences {
                let mut pool = occ.clone();
                rng.shuffle(&mut pool);
                let mut chosen = Vec::new();
                for (set_idx, set) in pool.chunks(self.set_size).enumerate() {
                    let mut ranked: Vec<usize> = set.to_vec();
                    // Rank by concomitant, interval index breaking ties.
                    ranked.sort_by(|&a, &b| {
                        concomitants[a]
                            .partial_cmp(&concomitants[b])
                            .expect("probe CPIs are finite")
                            .then(a.cmp(&b))
                    });
                    let rank = ((set_idx + j as usize) % self.set_size).min(ranked.len() - 1);
                    chosen.push(ranked[rank]);
                }
                per_stratum.push(chosen);
            }
            selections.push(per_stratum);
        }

        // Pass 2: measure the union of all selections once — deterministic
        // execution means a re-selected interval would re-measure
        // identically, so the union is equivalent and cheaper.
        let union: BTreeSet<usize> = selections.iter().flatten().flatten().copied().collect();
        let mut measure = SimDriver::new(workload, config, Track::None);
        ctx.bind(&mut measure);
        let mut policy = PointReplayPolicy::new(
            self.ff_ops,
            self.warm_ops,
            self.unit_ops,
            union.iter().copied().collect(),
        );
        measure.run(&mut policy);
        trace.merge(measure.trace());
        let mut cpi_of = vec![f64::NAN; interval_phases.len()];
        for (&p, &cpi) in policy.points.iter().zip(&policy.cpis) {
            cpi_of[p] = cpi;
        }

        // Replicate estimates: stratum means composed by instruction
        // weight; strata whose selections all fell to an incomplete
        // measurement fall back to the replicate's own mean.
        let weights = table.weights();
        let estimates: Vec<f64> = selections
            .iter()
            .map(|per_stratum| {
                let means: Vec<Option<f64>> = per_stratum
                    .iter()
                    .map(|sel| {
                        let cpis: Vec<f64> = sel
                            .iter()
                            .map(|&i| cpi_of[i])
                            .filter(|c| c.is_finite())
                            .collect();
                        (!cpis.is_empty()).then(|| cpis.iter().sum::<f64>() / cpis.len() as f64)
                    })
                    .collect();
                let fallback = {
                    let all: Vec<f64> = means.iter().flatten().copied().collect();
                    assert!(!all.is_empty(), "replicate measured no intervals");
                    all.iter().sum::<f64>() / all.len() as f64
                };
                means
                    .iter()
                    .zip(&weights)
                    .map(|(m, &w)| w * m.unwrap_or(fallback))
                    .sum()
            })
            .collect();

        let cpi_ci = replicate_ci(&estimates, Z_95);
        let samples = policy.cpis.iter().filter(|c| c.is_finite()).count() as u64;
        let mut mode_ops = rank.mode_ops();
        let pass_ops = measure.mode_ops();
        mode_ops.fast_forward += pass_ops.fast_forward;
        mode_ops.functional += pass_ops.functional;
        mode_ops.detailed_warming += pass_ops.detailed_warming;
        mode_ops.detailed_measured += pass_ops.detailed_measured;

        let mut samples_per_phase = vec![0u64; num_strata];
        for &p in &union {
            if cpi_of[p].is_finite() {
                samples_per_phase[interval_phases[p]] += 1;
            }
        }
        let estimate = Estimate {
            ipc: 1.0 / cpi_ci.mean,
            mode_ops,
            samples,
            phases: Some(PhaseSummary {
                phases: num_strata,
                changes: table.changes(),
                samples_per_phase,
                weights,
            }),
            ci: Some(crate::estimate::ipc_interval_from_cpi(cpi_ci)),
        };
        (estimate, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::relative_error;
    use crate::FullDetailed;

    fn scaled() -> RankedSet {
        RankedSet {
            ff_ops: 100_000,
            probe_ops: 200,
            warm_ops: 1_500,
            unit_ops: 500,
            ..RankedSet::default()
        }
    }

    #[test]
    fn measures_union_of_selections_only() {
        let w = pgss_workloads::gzip(0.02);
        let t = scaled();
        let est = t.run(&w);
        // Detail budget: one probe per interval (a few extra for trailing
        // partial intervals, since nominal_ops is approximate) plus
        // warm+unit per distinct selected interval.
        let intervals = (w.nominal_ops() / t.ff_ops) + 4;
        let max_detail = intervals * t.probe_ops + est.samples * (t.warm_ops + t.unit_ops);
        assert!(
            est.detailed_ops() <= max_detail,
            "detail {} > bound {max_detail}",
            est.detailed_ops()
        );
        assert!(est.samples > 0);
    }

    #[test]
    fn reasonable_accuracy_with_finite_ci() {
        let w = pgss_workloads::wupwise(0.02);
        let truth = FullDetailed::new().ground_truth(&w);
        let est = scaled().run(&w);
        let err = relative_error(est.ipc, truth.ipc);
        assert!(err < 0.2, "ranked-set error {err:.4}");
        let ci = est.ci.expect("between-replicate interval");
        assert!(ci.half_width.is_finite() && ci.half_width > 0.0);
        assert_eq!(ci.n, scaled().replicates);
    }

    #[test]
    fn deterministic() {
        let w = pgss_workloads::parser(0.01);
        let a = scaled().run(&w);
        let b = scaled().run(&w);
        assert_eq!(a, b);
    }

    #[test]
    fn more_replicates_do_not_inflate_measured_cost_per_sample() {
        // The union pass measures each distinct interval once, so doubling
        // replicates grows the union sublinearly.
        let w = pgss_workloads::gzip(0.02);
        let few = scaled().run(&w);
        let many = RankedSet {
            replicates: 10,
            ..scaled()
        }
        .run(&w);
        assert!(many.samples < few.samples * 5, "{}", many.samples);
    }

    #[test]
    fn name_encodes_parameters() {
        assert_eq!(RankedSet::new().name(), "RankedSet(1M/r2x5)");
        assert_eq!(
            RankedSet {
                signature: Signature::Mav,
                ..scaled()
            }
            .name(),
            "RankedSet-MAV(100k/r2x5)"
        );
    }
}
