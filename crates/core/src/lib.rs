//! Phase-Guided Small-Sample Simulation (PGSS-Sim) and the baseline sampled
//! simulation techniques it is evaluated against — a reproduction of Kihm,
//! Strom & Connors, *"Phase-Guided Small-Sample Simulation"*, ISPASS 2007.
//!
//! Cycle-accurate simulation of a full benchmark is orders of magnitude
//! slower than native execution, so production methodology simulates only a
//! tiny, representative subset in detail. This crate implements the paper's
//! contribution and every technique in its evaluation, all driving the same
//! [`pgss_cpu::Machine`] over the same [`pgss_workloads::Workload`]s:
//!
//! * [`FullDetailed`] — exhaustive cycle-level simulation; the ground truth.
//! * [`Smarts`] — periodic small samples (1k measured + 3k warming per ~1M
//!   ops), phase-blind (Wunderlich et al., ISCA 2003).
//! * [`TurboSmarts`] — SMARTS samples consumed in random order until a
//!   Gaussian confidence interval claims ±3 % at 99.7 % (Wenisch et al.,
//!   ISPASS 2006). The claim is unsound for polymodal programs, which the
//!   experiments expose.
//! * [`SimPointOffline`] — offline k-means over per-interval basic-block
//!   vectors; one large representative interval per phase (Sherwood et al.,
//!   ASPLOS 2002 / SimPoint 3.0).
//! * [`OnlineSimPoint`] — the online variant of Pereira et al.
//!   (CODES+ISSS 2005) with the perfect phase predictor the paper grants
//!   it: one large sample at each phase's first occurrence.
//! * [`PgssSim`] — the paper's technique: a hashed BBV tracked during
//!   functional fast-forwarding classifies each interval into a phase
//!   online; SMARTS-style samples are taken only while a phase's own
//!   confidence interval is unmet, with a spacing rule that spreads samples
//!   across a phase's occurrences.
//! * [`TwoPhaseStratified`] — two-phase stratified sampling (Ekman &
//!   Stenström, ISPASS 2005): a pilot pass per phase stratum, then Neyman
//!   allocation of the remaining detail budget by observed variance.
//! * [`RankedSet`] — ranked-set sampling with repeated subsampling (ibid.):
//!   intervals ranked by a cheap probe-CPI concomitant, rank-selected
//!   representatives measured, replicate estimates averaged.
//!
//! The phase-aware techniques each accept a [`Signature`] selecting the
//! phase signature they classify on: their native basic-block vector, or
//! Memory Access Vectors ([`Track::Mav`]) that separate phases by data
//! working set instead of control flow.
//!
//! Every technique returns an [`Estimate`] carrying the predicted IPC and
//! the per-[`pgss_cpu::Mode`] instruction counts, so accuracy and cost can
//! be compared exactly as the paper's Figures 11–13 do. The [`analysis`]
//! module provides the interval-profile machinery behind Figures 2–3 and
//! 6–10, and [`timing`] the simulation-time decomposition of Figure 13.
//!
//! # Example
//!
//! ```no_run
//! use pgss::{FullDetailed, PgssSim, Technique};
//!
//! let workload = pgss_workloads::gzip(0.05);
//! let truth = FullDetailed::new().ground_truth(&workload);
//! let estimate = PgssSim::new().run(&workload);
//! let error = pgss::relative_error(estimate.ipc, truth.ipc);
//! println!(
//!     "PGSS: {:.3} IPC vs true {:.3} ({:.2}% error) using {} detailed ops",
//!     estimate.ipc,
//!     truth.ipc,
//!     error * 100.0,
//!     estimate.detailed_ops(),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
pub mod analysis;
pub mod campaign;
pub mod ckpt;
pub mod driver;
mod estimate;
#[cfg(feature = "fault-inject")]
pub mod faults;
mod full;
mod online_simpoint;
mod pgss_sim;
mod phase;
mod ranked_set;
mod simpoint;
mod smarts;
pub mod timing;
mod turbo;
mod two_phase;
pub mod wire;

pub use adaptive::AdaptivePgss;
pub use campaign::{
    CampaignConfig, CampaignError, CampaignReport, CellError, CellFailure, CellResult, Job,
    RetryPolicy,
};
pub use ckpt::{
    CheckpointKey, CheckpointLadder, LadderReport, LadderSpec, SimContext, SNAPSHOT_FORMAT_VERSION,
};
pub use driver::{
    Bbv, Directive, DriverSnapshot, RunTrace, SamplingPolicy, Segment, SegmentOutcome, Signature,
    SimDriver, Track,
};
pub use estimate::{relative_error, Estimate, GroundTruth, PhaseSummary, Technique};
// Observability surface: campaigns return `MetricsReport`s and drivers
// accept any `Recorder` (see `pgss_obs` for the full model).
pub use full::FullDetailed;
pub use online_simpoint::OnlineSimPoint;
pub use pgss_obs::{
    MetricsFrame, MetricsRecorder, MetricsReport, NoopRecorder, Recorder, METRICS_SCHEMA_VERSION,
};
pub use pgss_sim::PgssSim;
pub use phase::{Classification, PhaseEntry, PhaseTable};
pub use ranked_set::RankedSet;
pub use simpoint::SimPointOffline;
pub use smarts::Smarts;
pub use turbo::TurboSmarts;
pub use two_phase::TwoPhaseStratified;

/// The paper's threshold notation: a fraction of π radians.
///
/// ```
/// let t = pgss::threshold(0.05); // the paper's best overall threshold
/// assert!((t - 0.157).abs() < 1e-3);
/// ```
pub fn threshold(fraction_of_pi: f64) -> f64 {
    fraction_of_pi * std::f64::consts::PI
}
