//! The online phase table shared by PGSS-Sim and the phase-analysis
//! figures.

use pgss_bbv::HashedBbv;

/// One discovered phase: its accumulated BBV signature and bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseEntry {
    /// Sum of all member interval BBVs (the phase's signature; comparisons
    /// use the angle, which is scale-free, so no renormalisation is
    /// needed).
    pub signature: HashedBbv,
    /// Number of member intervals.
    pub intervals: u64,
    /// Total retired instructions attributed to the phase.
    pub ops: u64,
}

/// The outcome of classifying one interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Classification {
    /// The phase the interval was assigned to.
    pub phase: usize,
    /// `true` if the assignment differs from the previous interval's phase.
    pub changed: bool,
    /// `true` if a new phase was created for this interval.
    pub created: bool,
}

/// Online phase detection over hashed-BBV intervals, following Section 4 of
/// the paper:
///
/// 1. the interval's BBV is first compared against the *previous interval's*
///    BBV (a phase change is unlikely, so this fast path usually hits);
/// 2. on a change, it is compared against every known phase's signature;
/// 3. if none is within the threshold angle, a new phase is created.
///
/// # Example
///
/// ```
/// use pgss::{threshold, PhaseTable};
/// use pgss_bbv::HashedBbv;
///
/// let mut table = PhaseTable::new(threshold(0.05));
/// let mut a = HashedBbv::new();
/// a.record(0, 100);
/// let mut b = HashedBbv::new();
/// b.record(9, 100);
/// let c0 = table.classify(&a, 100);
/// let c1 = table.classify(&b, 100); // orthogonal: new phase
/// let c2 = table.classify(&a, 100); // back to the first phase
/// assert_eq!((c0.phase, c1.phase, c2.phase), (0, 1, 0));
/// assert!(c1.created && c2.changed && !c2.created);
/// assert_eq!(table.phases().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct PhaseTable {
    threshold: f64,
    phases: Vec<PhaseEntry>,
    last_bbv: Option<HashedBbv>,
    last_phase: usize,
    changes: u64,
}

impl PhaseTable {
    /// Creates an empty table with the given angle threshold in radians
    /// (the paper writes thresholds as fractions of π; see
    /// [`crate::threshold`]).
    ///
    /// # Panics
    ///
    /// Panics if `threshold_rad` is negative or not finite.
    pub fn new(threshold_rad: f64) -> PhaseTable {
        assert!(
            threshold_rad.is_finite() && threshold_rad >= 0.0,
            "threshold must be a non-negative angle, got {threshold_rad}"
        );
        PhaseTable {
            threshold: threshold_rad,
            phases: Vec::new(),
            last_bbv: None,
            last_phase: 0,
            changes: 0,
        }
    }

    /// The angle threshold in radians.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The discovered phases.
    pub fn phases(&self) -> &[PhaseEntry] {
        &self.phases
    }

    /// The phase of the most recently classified interval.
    pub fn current_phase(&self) -> usize {
        self.last_phase
    }

    /// Number of interval-to-interval phase transitions seen so far.
    pub fn changes(&self) -> u64 {
        self.changes
    }

    /// Classifies one interval's BBV, attributing `interval_ops` retired
    /// instructions to the chosen phase, and updates the table.
    pub fn classify(&mut self, bbv: &HashedBbv, interval_ops: u64) -> Classification {
        let phase;
        let mut created = false;
        if let Some(last) = &self.last_bbv {
            if bbv.angle(last) < self.threshold {
                // Fast path: same phase as the previous interval.
                phase = self.last_phase;
            } else if let Some(found) = self.find_matching_phase(bbv) {
                phase = found;
            } else {
                phase = self.create_phase();
                created = true;
            }
        } else if let Some(found) = self.find_matching_phase(bbv) {
            // First interval after construction (no previous BBV).
            phase = found;
        } else {
            phase = self.create_phase();
            created = true;
        }

        let entry = &mut self.phases[phase];
        entry.signature.merge(bbv);
        entry.intervals += 1;
        entry.ops += interval_ops;

        let changed = self.last_bbv.is_some() && phase != self.last_phase;
        if changed {
            self.changes += 1;
        }
        self.last_bbv = Some(*bbv);
        self.last_phase = phase;
        Classification {
            phase,
            changed,
            created,
        }
    }

    fn find_matching_phase(&self, bbv: &HashedBbv) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, p) in self.phases.iter().enumerate() {
            let a = bbv.angle(&p.signature);
            if a < self.threshold && best.is_none_or(|(_, ba)| a < ba) {
                best = Some((i, a));
            }
        }
        best.map(|(i, _)| i)
    }

    fn create_phase(&mut self) -> usize {
        self.phases.push(PhaseEntry {
            signature: HashedBbv::new(),
            intervals: 0,
            ops: 0,
        });
        self.phases.len() - 1
    }

    /// Instruction-weight fractions per phase (sums to 1 once any interval
    /// has been classified).
    pub fn weights(&self) -> Vec<f64> {
        let total: u64 = self.phases.iter().map(|p| p.ops).sum();
        if total == 0 {
            return vec![0.0; self.phases.len()];
        }
        self.phases
            .iter()
            .map(|p| p.ops as f64 / total as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bbv(pairs: &[(usize, u64)]) -> HashedBbv {
        let mut v = HashedBbv::new();
        for &(i, ops) in pairs {
            v.record(i, ops);
        }
        v
    }

    #[test]
    fn stable_stream_is_one_phase() {
        let mut t = PhaseTable::new(crate::threshold(0.05));
        for _ in 0..10 {
            let c = t.classify(&bbv(&[(0, 90), (1, 10)]), 100);
            assert_eq!(c.phase, 0);
        }
        assert_eq!(t.phases().len(), 1);
        assert_eq!(t.changes(), 0);
        assert_eq!(t.phases()[0].intervals, 10);
        assert_eq!(t.phases()[0].ops, 1000);
    }

    #[test]
    fn alternation_is_two_phases_with_changes() {
        let mut t = PhaseTable::new(crate::threshold(0.05));
        for i in 0..10 {
            let v = if i % 2 == 0 {
                bbv(&[(0, 100)])
            } else {
                bbv(&[(5, 100)])
            };
            t.classify(&v, 100);
        }
        assert_eq!(t.phases().len(), 2);
        assert_eq!(t.changes(), 9);
        assert_eq!(t.phases()[0].intervals, 5);
        assert_eq!(t.phases()[1].intervals, 5);
    }

    #[test]
    fn revisited_phase_is_recognised_not_recreated() {
        let mut t = PhaseTable::new(crate::threshold(0.05));
        let a = bbv(&[(0, 100)]);
        let b = bbv(&[(7, 100)]);
        t.classify(&a, 1);
        t.classify(&b, 1);
        let c = t.classify(&a, 1);
        assert_eq!(c.phase, 0);
        assert!(!c.created);
        assert!(c.changed);
        assert_eq!(t.phases().len(), 2);
    }

    #[test]
    fn loose_threshold_merges_everything() {
        // Threshold π/2 admits any pair of non-negative vectors.
        let mut t = PhaseTable::new(std::f64::consts::FRAC_PI_2 + 0.01);
        t.classify(&bbv(&[(0, 100)]), 1);
        t.classify(&bbv(&[(9, 100)]), 1);
        t.classify(&bbv(&[(3, 50), (4, 50)]), 1);
        assert_eq!(t.phases().len(), 1);
        assert_eq!(t.changes(), 0);
    }

    #[test]
    fn near_miss_vectors_split_under_tight_threshold() {
        let mut t = PhaseTable::new(crate::threshold(0.02));
        t.classify(&bbv(&[(0, 100)]), 1);
        // ~11 degrees away: outside 0.02π (3.6°).
        t.classify(&bbv(&[(0, 100), (1, 20)]), 1);
        assert_eq!(t.phases().len(), 2);
    }

    #[test]
    fn weights_are_ops_fractions() {
        let mut t = PhaseTable::new(crate::threshold(0.05));
        t.classify(&bbv(&[(0, 1)]), 300);
        t.classify(&bbv(&[(5, 1)]), 100);
        let w = t.weights();
        assert!((w[0] - 0.75).abs() < 1e-12);
        assert!((w[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative angle")]
    fn negative_threshold_panics() {
        let _ = PhaseTable::new(-0.1);
    }
}
