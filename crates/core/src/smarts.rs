//! SMARTS: systematic small-sample simulation (Wunderlich et al., ISCA
//! 2003).

use pgss_cpu::{MachineConfig, Mode};
use pgss_stats::{ConfidenceInterval, Welford, Z_95};
use pgss_workloads::Workload;

use crate::ckpt::SimContext;
use crate::driver::{
    Directive, RunTrace, SamplingPolicy, Segment, SegmentOutcome, SimDriver, Track,
};
use crate::estimate::{ipc_interval_from_cpi, Estimate, Technique};

/// Phase-blind periodic sampling: every `period_ops`, run `warm_ops` of
/// detailed warming followed by `unit_ops` of measured detailed simulation;
/// functionally fast-forward (with cache/predictor warming) in between.
///
/// The whole-program CPI is estimated as the mean of the per-sample CPIs —
/// unbiased for equal-size samples under systematic sampling — and inverted
/// to IPC.
///
/// # Example
///
/// ```no_run
/// use pgss::{Smarts, Technique};
///
/// let w = pgss_workloads::gzip(0.05);
/// let est = Smarts::new().run(&w);
/// assert!(est.samples > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Smarts {
    /// Measured detailed instructions per sample (the paper: 1,000).
    pub unit_ops: u64,
    /// Detailed-warming instructions before each sample (the paper:
    /// ~3,000).
    pub warm_ops: u64,
    /// Sampling period: one sample is taken per this many retired
    /// instructions (the paper: on the order of 1 M).
    pub period_ops: u64,
}

impl Default for Smarts {
    fn default() -> Smarts {
        Smarts {
            unit_ops: 1_000,
            warm_ops: 3_000,
            period_ops: 1_000_000,
        }
    }
}

impl Smarts {
    /// The paper's configuration: 1k measured + 3k warming per 1M-op
    /// period.
    pub fn new() -> Smarts {
        Smarts::default()
    }

    /// Collects the full systematic sample population: per-sample CPIs in
    /// program order. Shared with [`crate::TurboSmarts`], whose checkpoint
    /// library is exactly this population.
    pub(crate) fn collect_population(
        &self,
        workload: &Workload,
        config: &MachineConfig,
        ctx: &SimContext,
    ) -> (Vec<f64>, pgss_cpu::ModeOps, RunTrace) {
        assert!(self.unit_ops > 0, "unit_ops must be positive");
        assert!(
            self.period_ops > self.unit_ops + self.warm_ops,
            "period must exceed warm + unit ({} + {})",
            self.warm_ops,
            self.unit_ops
        );
        let mut driver = SimDriver::new(workload, config, Track::None);
        ctx.bind(&mut driver);
        let mut policy = SmartsPolicy {
            unit_ops: self.unit_ops,
            warm_ops: self.warm_ops,
            ff_ops: self.period_ops - self.unit_ops - self.warm_ops,
            state: State::Warm,
            cpis: Vec::new(),
        };
        driver.run(&mut policy);
        (policy.cpis, driver.mode_ops(), *driver.trace())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Warm,
    Measure,
    FastForward,
    Done,
}

/// The SMARTS segment cycle as a [`SamplingPolicy`]: warm → measure →
/// fast-forward, stopping at the first halted segment.
struct SmartsPolicy {
    unit_ops: u64,
    warm_ops: u64,
    ff_ops: u64,
    state: State,
    cpis: Vec<f64>,
}

impl SamplingPolicy for SmartsPolicy {
    fn next(&mut self, _trace: &mut RunTrace) -> Directive {
        match self.state {
            State::Warm => Directive::Run(Segment::new(Mode::DetailedWarming, self.warm_ops)),
            State::Measure => Directive::Run(Segment::new(Mode::DetailedMeasured, self.unit_ops)),
            State::FastForward => Directive::Run(Segment::new(Mode::Functional, self.ff_ops)),
            State::Done => Directive::Finish,
        }
    }

    fn observe(&mut self, outcome: &SegmentOutcome, trace: &mut RunTrace) {
        match self.state {
            State::Warm => self.state = State::Measure,
            State::Measure => {
                if outcome.complete() {
                    self.cpis.push(outcome.cpi());
                    trace.samples_taken += 1;
                }
                self.state = State::FastForward;
            }
            State::FastForward => self.state = State::Warm,
            State::Done => unreachable!("no segments are issued after Done"),
        }
        if outcome.halted {
            self.state = State::Done;
        }
    }
}

impl Technique for Smarts {
    fn name(&self) -> String {
        format!("SMARTS({}k/{})", self.period_ops / 1000, self.unit_ops)
    }

    fn run_with(&self, workload: &Workload, config: &MachineConfig) -> Estimate {
        self.run_traced(workload, config).0
    }

    fn run_traced(&self, workload: &Workload, config: &MachineConfig) -> (Estimate, RunTrace) {
        self.run_traced_ctx(workload, config, &SimContext::none())
    }

    fn run_traced_ctx(
        &self,
        workload: &Workload,
        config: &MachineConfig,
        ctx: &SimContext,
    ) -> (Estimate, RunTrace) {
        let (cpis, mode_ops, trace) = self.collect_population(workload, config, ctx);
        assert!(
            !cpis.is_empty(),
            "workload too short for even one SMARTS sample"
        );
        let w: Welford = cpis.iter().copied().collect();
        // SMARTS's own 95 % claim: Gaussian over the per-sample CPI
        // population, delta-mapped into IPC space. Under polymodal phase
        // behaviour this interval understates the true error — which is
        // exactly what `tests/statistical_validation.rs` measures.
        let ci = ipc_interval_from_cpi(ConfidenceInterval::from_welford(&w, Z_95));
        (
            Estimate {
                ipc: 1.0 / w.mean(),
                mode_ops,
                samples: w.count(),
                phases: None,
                ci: Some(ci),
            },
            trace,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::relative_error;
    use crate::FullDetailed;

    #[test]
    fn sample_count_matches_period() {
        let w = pgss_workloads::mesa(0.01);
        let s = Smarts {
            unit_ops: 1_000,
            warm_ops: 3_000,
            period_ops: 100_000,
        };
        let est = s.run(&w);
        let expected = w.nominal_ops() / s.period_ops;
        assert!(
            (est.samples as i64 - expected as i64).unsigned_abs() <= expected / 5 + 2,
            "samples {} vs expected ~{expected}",
            est.samples
        );
    }

    #[test]
    fn detailed_ops_accounting() {
        let w = pgss_workloads::twolf(0.01);
        let s = Smarts {
            unit_ops: 1_000,
            warm_ops: 3_000,
            period_ops: 200_000,
        };
        let est = s.run(&w);
        // Exactly (unit + warm) per sample, modulo the final truncated
        // sample.
        let per_sample = s.unit_ops + s.warm_ops;
        assert!(est.detailed_ops() >= est.samples * per_sample);
        assert!(est.detailed_ops() <= (est.samples + 1) * per_sample);
    }

    #[test]
    fn accurate_on_a_stable_workload() {
        // twolf has tiny IPC variance, so even a short run samples it well.
        let w = pgss_workloads::twolf(0.02);
        let truth = FullDetailed::new().ground_truth(&w);
        let est = Smarts {
            unit_ops: 1_000,
            warm_ops: 3_000,
            period_ops: 50_000,
        }
        .run(&w);
        let err = relative_error(est.ipc, truth.ipc);
        assert!(err < 0.05, "SMARTS error {err:.4} on stable workload");
    }

    #[test]
    #[should_panic(expected = "period must exceed")]
    fn degenerate_period_panics() {
        let w = pgss_workloads::twolf(0.002);
        let _ = Smarts {
            unit_ops: 1_000,
            warm_ops: 3_000,
            period_ops: 2_000,
        }
        .run(&w);
    }
}
