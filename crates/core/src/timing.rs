//! Wall-clock simulation-time modelling (the paper's Figure 13).
//!
//! Fig. 13 decomposes each technique's total simulation time into
//! fast-forwarding, detailed warming, and detailed simulation, using the
//! measured per-mode simulation rates of the host. This module measures the
//! rates of *this* simulator on *this* host (with and without BBV tracking
//! attached) and applies them to the per-mode instruction counts an
//! [`crate::Estimate`] reports.

use std::time::Instant;

use pgss_bbv::{BbvHash, HashedBbvTracker};
use pgss_cpu::{MachineConfig, Mode, ModeOps};
use pgss_workloads::Workload;

/// Measured simulation rates in instructions per second, per mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeRates {
    /// [`Mode::FastForward`] (no warming).
    pub fast_forward: f64,
    /// [`Mode::Functional`] (cache/predictor warming).
    pub functional: f64,
    /// [`Mode::DetailedWarming`].
    pub detailed_warming: f64,
    /// [`Mode::DetailedMeasured`].
    pub detailed_measured: f64,
}

/// Measures per-mode simulation rates by running `sample_ops` instructions
/// of `workload` in each mode, optionally with a hashed-BBV tracker
/// attached (the paper reports both, showing the tracking overhead is
/// negligible).
///
/// Rates depend on the host and the workload's cache behaviour; Fig. 13
/// uses a mid-suite workload.
///
/// # Panics
///
/// Panics if `sample_ops` is zero.
pub fn measure_rates(
    workload: &Workload,
    config: &MachineConfig,
    with_bbv: bool,
    sample_ops: u64,
) -> ModeRates {
    assert!(sample_ops > 0, "sample_ops must be positive");
    let rate_of = |mode: Mode| -> f64 {
        let mut machine = workload.machine_with(*config);
        // Warm up out of the cold-start region first.
        machine.run(Mode::Functional, sample_ops / 4);
        let start = Instant::now();
        let r = if with_bbv {
            let mut tracker = HashedBbvTracker::new(BbvHash::from_seed(1));
            machine.run_with(mode, sample_ops, &mut tracker)
        } else {
            machine.run(mode, sample_ops)
        };
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        r.ops as f64 / secs
    };
    ModeRates {
        fast_forward: rate_of(Mode::FastForward),
        functional: rate_of(Mode::Functional),
        detailed_warming: rate_of(Mode::DetailedWarming),
        detailed_measured: rate_of(Mode::DetailedMeasured),
    }
}

/// A technique's modelled wall-clock time, decomposed as in Fig. 13.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeBreakdown {
    /// Seconds of raw fast-forwarding.
    pub fast_forward_s: f64,
    /// Seconds of functional (warming) fast-forwarding.
    pub functional_s: f64,
    /// Seconds of detailed warming.
    pub detailed_warming_s: f64,
    /// Seconds of measured detailed simulation.
    pub detailed_s: f64,
}

impl TimeBreakdown {
    /// Total modelled seconds.
    pub fn total(&self) -> f64 {
        self.fast_forward_s + self.functional_s + self.detailed_warming_s + self.detailed_s
    }
}

/// Applies measured `rates` to a technique's per-mode instruction counts.
///
/// ```
/// use pgss::timing::{time_for, ModeRates};
/// use pgss_cpu::ModeOps;
///
/// let rates = ModeRates {
///     fast_forward: 100e6,
///     functional: 50e6,
///     detailed_warming: 10e6,
///     detailed_measured: 10e6,
/// };
/// let ops = ModeOps { functional: 100_000_000, detailed_warming: 3_000_000,
///                     detailed_measured: 1_000_000, fast_forward: 0 };
/// let t = time_for(&ops, &rates);
/// assert!((t.functional_s - 2.0).abs() < 1e-9);
/// assert!((t.total() - 2.4).abs() < 1e-9);
/// ```
pub fn time_for(mode_ops: &ModeOps, rates: &ModeRates) -> TimeBreakdown {
    TimeBreakdown {
        fast_forward_s: mode_ops.fast_forward as f64 / rates.fast_forward,
        functional_s: mode_ops.functional as f64 / rates.functional,
        detailed_warming_s: mode_ops.detailed_warming as f64 / rates.detailed_warming,
        detailed_s: mode_ops.detailed_measured as f64 / rates.detailed_measured,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_are_positive_and_functional_not_slower_than_detailed() {
        let w = pgss_workloads::twolf(0.01);
        let rates = measure_rates(&w, &MachineConfig::default(), false, 2_000_000);
        assert!(rates.fast_forward > 0.0);
        assert!(rates.functional > 0.0);
        assert!(rates.detailed_measured > 0.0);
        // The detailed model does strictly more work per instruction; allow
        // generous noise but require it not be *faster* by 2x.
        assert!(rates.detailed_measured < rates.functional * 2.0);
    }

    #[test]
    fn bbv_overhead_is_modest() {
        let w = pgss_workloads::twolf(0.01);
        let cfg = MachineConfig::default();
        let with = measure_rates(&w, &cfg, true, 2_000_000);
        let without = measure_rates(&w, &cfg, false, 2_000_000);
        // The paper reports ~1% overhead; allow wide noise margins but
        // catch pathological slowdowns.
        assert!(with.functional > without.functional * 0.5);
    }

    #[test]
    fn breakdown_math() {
        let rates = ModeRates {
            fast_forward: 10.0,
            functional: 10.0,
            detailed_warming: 1.0,
            detailed_measured: 2.0,
        };
        let ops = ModeOps {
            fast_forward: 100,
            functional: 50,
            detailed_warming: 3,
            detailed_measured: 4,
        };
        let t = time_for(&ops, &rates);
        assert!((t.fast_forward_s - 10.0).abs() < 1e-12);
        assert!((t.functional_s - 5.0).abs() < 1e-12);
        assert!((t.detailed_warming_s - 3.0).abs() < 1e-12);
        assert!((t.detailed_s - 2.0).abs() < 1e-12);
        assert!((t.total() - 20.0).abs() < 1e-12);
    }
}
