//! Hermetic observability for the PGSS-Sim reproduction: counters,
//! scoped spans, value distributions, and streaming histograms behind a
//! [`Recorder`] trait whose default implementation is a no-op.
//!
//! # Design
//!
//! Instrumented code talks to an abstract [`Recorder`]; the hot paths in
//! `pgss` (driver segment loop, campaign workers, checkpoint store) hold
//! an `Arc<dyn Recorder>` that defaults to [`NoopRecorder`], whose
//! methods are empty and inlineable — an uninstrumented run pays one
//! virtual call per *segment* (thousands to millions of ops), nothing
//! per op.
//!
//! [`MetricsRecorder`] is the real sink: it accumulates a
//! [`MetricsFrame`] (sorted maps of counters, spans, [`Welford`]
//! distributions, and [`Histogram`]s). Frames are values: they
//! [`MetricsFrame::merge`] associatively, which is what lets a parallel
//! campaign give every worker cell its own recorder and fold the frames
//! in deterministic job order at join — emitted metrics are then
//! byte-identical no matter how many workers ran (`PGSS_WORKERS`).
//!
//! # Determinism of metrics
//!
//! Everything in a frame is deterministic **except** wall-clock span
//! durations. [`SpanStat`] therefore carries `total_ns` but excludes it
//! from `PartialEq`, `Debug`, and the JSONL export: reports compare and
//! print identically across runs and thread counts, while a live caller
//! (e.g. the `campaign_metrics` bin) can still read real timings off the
//! in-memory report. Tests that need exact span durations inject a
//! [`ManualClock`] instead of the default [`MonotonicClock`].
//!
//! The JSONL export ([`MetricsReport::to_jsonl`]) is versioned by
//! [`METRICS_SCHEMA_VERSION`] and pinned by a golden test, the same way
//! the checkpoint snapshot format is pinned.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use pgss_stats::{Histogram, Welford};

/// Version of the JSONL export schema. Bump deliberately when the line
/// layout changes; `tests/metrics_golden.rs` pins both this constant and
/// an exact exported line.
pub const METRICS_SCHEMA_VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// Clocks

/// A monotonic nanosecond clock. Injected into [`MetricsRecorder`] so
/// tests can replace wall time with a [`ManualClock`] and assert exact
/// span durations.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Nanoseconds since an arbitrary fixed origin; must never decrease.
    fn now_ns(&self) -> u64;
}

/// Real wall time via [`Instant`], measured from clock construction.
#[derive(Debug, Clone)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    pub fn new() -> MonotonicClock {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> MonotonicClock {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        // Saturate far in the future rather than panic; u64 nanoseconds
        // cover ~584 years of process uptime.
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A hand-advanced clock for deterministic tests.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A clock stopped at 0 ns.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Advances the clock by `ns`.
    pub fn advance(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

// ---------------------------------------------------------------------------
// Recorder trait

/// The instrumentation sink. Every method has an empty default body, so
/// `impl Recorder for NoopRecorder {}` is the whole disabled path.
///
/// Metric names are dot-separated static-ish strings (`"driver.ops.detail"`);
/// recorders key storage by name, so the same name always means the same
/// series.
pub trait Recorder: Send + Sync + fmt::Debug {
    /// True when this recorder actually stores anything. Hot paths may
    /// check this once and skip building metric values entirely.
    fn enabled(&self) -> bool {
        false
    }

    /// Adds `delta` to the counter `name`.
    fn add(&self, name: &str, delta: u64) {
        let _ = (name, delta);
    }

    /// Feeds `value` into the streaming distribution (Welford) `name`.
    fn observe(&self, name: &str, value: f64) {
        let _ = (name, value);
    }

    /// Feeds `value` into the histogram `name`. Histograms have fixed
    /// ranges, so the name must have been registered on the concrete
    /// recorder (see [`MetricsRecorder::register_hist`]); unregistered
    /// names are ignored.
    fn record_hist(&self, name: &str, value: f64) {
        let _ = (name, value);
    }

    /// Current time for span measurement. The no-op recorder returns 0,
    /// so disabled spans never touch the clock.
    fn now_ns(&self) -> u64 {
        0
    }

    /// Reports a finished span: `elapsed_ns` of wall time under `name`.
    fn span_closed(&self, name: &str, elapsed_ns: u64) {
        let _ = (name, elapsed_ns);
    }
}

/// The disabled recorder: every method is a no-op.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// A scoped timer: measures from [`Span::enter`] to drop and reports the
/// duration via [`Recorder::span_closed`]. Against a [`NoopRecorder`]
/// both ends are free.
#[derive(Debug)]
pub struct Span<'a> {
    rec: &'a dyn Recorder,
    name: &'a str,
    start_ns: u64,
}

impl<'a> Span<'a> {
    /// Starts a span named `name` on `rec`.
    pub fn enter(rec: &'a dyn Recorder, name: &'a str) -> Span<'a> {
        Span {
            rec,
            name,
            start_ns: rec.now_ns(),
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let elapsed = self.rec.now_ns().saturating_sub(self.start_ns);
        self.rec.span_closed(self.name, elapsed);
    }
}

// ---------------------------------------------------------------------------
// Frames

/// Aggregated statistics for one span name.
///
/// `total_ns` is wall time and therefore nondeterministic; it is
/// deliberately excluded from `PartialEq`, `Debug`, and the JSONL export
/// so that metric reports stay byte-identical across runs and worker
/// counts (see the crate docs). Read it explicitly when you want real
/// timings.
#[derive(Clone, Copy, Default)]
pub struct SpanStat {
    /// How many spans closed under this name.
    pub count: u64,
    /// Total wall-clock nanoseconds across those spans (nondeterministic).
    pub total_ns: u64,
}

impl PartialEq for SpanStat {
    fn eq(&self, other: &SpanStat) -> bool {
        self.count == other.count
    }
}

impl fmt::Debug for SpanStat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `total_ns` is elided: Debug output feeds byte-identical-replay
        // assertions.
        f.debug_struct("SpanStat")
            .field("count", &self.count)
            .finish_non_exhaustive()
    }
}

impl SpanStat {
    /// Folds another span aggregate into this one.
    pub fn merge(&mut self, other: &SpanStat) {
        self.count += other.count;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
    }
}

/// One recorder's worth of metrics: sorted maps from metric name to
/// counter / span / distribution / histogram state. Frames are plain
/// values that merge associatively.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsFrame {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Scoped-timer aggregates.
    pub spans: BTreeMap<String, SpanStat>,
    /// Streaming mean/variance accumulators.
    pub dists: BTreeMap<String, Welford>,
    /// Fixed-range streaming histograms.
    pub hists: BTreeMap<String, Histogram>,
}

impl MetricsFrame {
    /// An empty frame.
    pub fn new() -> MetricsFrame {
        MetricsFrame::default()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.spans.is_empty()
            && self.dists.is_empty()
            && self.hists.is_empty()
    }

    /// The counter `name`, or 0 if never touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The span aggregate `name`, if any span closed under it.
    pub fn span(&self, name: &str) -> Option<&SpanStat> {
        self.spans.get(name)
    }

    /// Adds `delta` to counter `name`.
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Events per second: counter `counter` divided by the wall time
    /// accumulated under span `span`. `None` when the counter is absent,
    /// the span never closed, or no wall time was observed (e.g. under a
    /// [`ManualClock`] that never advanced) — callers render that as
    /// "unknown rate", never as infinity.
    ///
    /// This is the derived, *report-time* view of throughput; like span
    /// wall totals themselves it is nondeterministic and must stay out of
    /// byte-compared artifacts.
    pub fn rate_per_sec(&self, counter: &str, span: &str) -> Option<f64> {
        let events = self.counters.get(counter).copied()?;
        let wall_ns = self.spans.get(span)?.total_ns;
        if wall_ns == 0 {
            return None;
        }
        Some(events as f64 * 1e9 / wall_ns as f64)
    }

    /// Folds `other` into `self`: counters add, spans add, Welford
    /// accumulators merge (Chan's method), histograms merge bin-wise.
    ///
    /// Counter/span/histogram merging is exact and fully associative.
    /// Welford merging is associative only up to float rounding, so
    /// deterministic aggregation must fold frames in a fixed order —
    /// the campaign folds per-cell frames in job order.
    pub fn merge(&mut self, other: &MetricsFrame) {
        for (name, delta) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += delta;
        }
        for (name, stat) in &other.spans {
            self.spans.entry(name.clone()).or_default().merge(stat);
        }
        for (name, w) in &other.dists {
            self.dists.entry(name.clone()).or_default().merge(w);
        }
        for (name, h) in &other.hists {
            match self.hists.get_mut(name) {
                Some(mine) => mine.merge(h),
                None => {
                    self.hists.insert(name.clone(), h.clone());
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// MetricsRecorder

fn recover<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panic while holding the frame lock leaves a valid (if partial)
    // frame; metrics must never turn a recovered fault into a new one.
    lock.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The real recorder: accumulates a [`MetricsFrame`] behind a mutex,
/// with an injected [`Clock`] for span timing.
#[derive(Debug)]
pub struct MetricsRecorder {
    clock: Arc<dyn Clock>,
    frame: Mutex<MetricsFrame>,
}

impl Default for MetricsRecorder {
    fn default() -> MetricsRecorder {
        MetricsRecorder::new()
    }
}

impl MetricsRecorder {
    /// A recorder on real wall time ([`MonotonicClock`]).
    pub fn new() -> MetricsRecorder {
        MetricsRecorder::with_clock(Arc::new(MonotonicClock::new()))
    }

    /// A recorder on an injected clock (tests use [`ManualClock`]).
    pub fn with_clock(clock: Arc<dyn Clock>) -> MetricsRecorder {
        MetricsRecorder {
            clock,
            frame: Mutex::new(MetricsFrame::new()),
        }
    }

    /// Declares the histogram `name` with `bins` equal-width bins over
    /// `[min, max)`. [`Recorder::record_hist`] values for names that were
    /// never registered are dropped — a histogram cannot guess its range.
    pub fn register_hist(&self, name: &str, min: f64, max: f64, bins: usize) {
        recover(&self.frame)
            .hists
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(min, max, bins));
    }

    /// A snapshot of everything recorded so far.
    pub fn frame(&self) -> MetricsFrame {
        recover(&self.frame).clone()
    }

    /// Consumes the recorder, returning its frame without cloning.
    pub fn into_frame(self) -> MetricsFrame {
        self.frame
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl Recorder for MetricsRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn add(&self, name: &str, delta: u64) {
        recover(&self.frame).add(name, delta);
    }

    fn observe(&self, name: &str, value: f64) {
        recover(&self.frame)
            .dists
            .entry(name.to_string())
            .or_default()
            .push(value);
    }

    fn record_hist(&self, name: &str, value: f64) {
        if let Some(h) = recover(&self.frame).hists.get_mut(name) {
            h.add(value);
        }
    }

    fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    fn span_closed(&self, name: &str, elapsed_ns: u64) {
        let mut frame = recover(&self.frame);
        let stat = frame.spans.entry(name.to_string()).or_default();
        stat.count += 1;
        stat.total_ns = stat.total_ns.saturating_add(elapsed_ns);
    }
}

// ---------------------------------------------------------------------------
// Reports + JSONL export

/// Named scopes of metrics: the campaign-level frame plus one frame per
/// grid cell, in deterministic (job) order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsReport {
    /// `(scope name, frame)` pairs in insertion order.
    pub scopes: Vec<(String, MetricsFrame)>,
}

impl MetricsReport {
    /// An empty report.
    pub fn new() -> MetricsReport {
        MetricsReport::default()
    }

    /// Appends a named scope.
    pub fn push_scope(&mut self, name: impl Into<String>, frame: MetricsFrame) {
        self.scopes.push((name.into(), frame));
    }

    /// The first scope named `name`, if present.
    pub fn scope(&self, name: &str) -> Option<&MetricsFrame> {
        self.scopes.iter().find(|(n, _)| n == name).map(|(_, f)| f)
    }

    /// True when the report has no scopes.
    pub fn is_empty(&self) -> bool {
        self.scopes.is_empty()
    }

    /// All scopes folded into one frame (scope order, so deterministic
    /// for a deterministically-built report).
    pub fn totals(&self) -> MetricsFrame {
        let mut total = MetricsFrame::new();
        for (_, frame) in &self.scopes {
            total.merge(frame);
        }
        total
    }

    /// Serializes the report as JSON Lines: one object per scope, keys in
    /// sorted order, schema versioned by [`METRICS_SCHEMA_VERSION`].
    ///
    /// Span wall times are **not** exported (only counts) — the export is
    /// byte-identical across reruns and `PGSS_WORKERS` settings.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, frame) in &self.scopes {
            export_scope(&mut out, name, frame);
            out.push('\n');
        }
        out
    }
}

/// Serializes one named scope as a single JSON line (no trailing
/// newline), on exactly the schema [`MetricsReport::to_jsonl`] emits —
/// [`METRICS_SCHEMA_VERSION`]-tagged, sorted keys, span wall times
/// excluded. This is the streaming building block: the campaign server
/// uses it to fold live counters into each frame it streams, and the
/// canonical campaign artifact uses it to export per-cell scopes without
/// assembling a whole report first.
pub fn scope_line(name: &str, frame: &MetricsFrame) -> String {
    let mut out = String::new();
    export_scope(&mut out, name, frame);
    out
}

fn export_scope(out: &mut String, name: &str, frame: &MetricsFrame) {
    use fmt::Write as _;
    out.push_str("{\"v\":");
    let _ = write!(out, "{METRICS_SCHEMA_VERSION}");
    out.push_str(",\"scope\":");
    json_string(out, name);
    out.push_str(",\"counters\":{");
    for (i, (k, v)) in frame.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_string(out, k);
        let _ = write!(out, ":{v}");
    }
    out.push_str("},\"spans\":{");
    for (i, (k, s)) in frame.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_string(out, k);
        let _ = write!(out, ":{}", s.count);
    }
    out.push_str("},\"dists\":{");
    for (i, (k, w)) in frame.dists.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_string(out, k);
        out.push_str(":{\"n\":");
        let _ = write!(out, "{}", w.count());
        out.push_str(",\"mean\":");
        json_f64(out, w.mean());
        out.push_str(",\"std\":");
        json_f64(out, w.sample_stddev());
        out.push('}');
    }
    out.push_str("},\"hists\":{");
    for (i, (k, h)) in frame.hists.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_string(out, k);
        out.push_str(":{\"min\":");
        json_f64(out, h.min());
        out.push_str(",\"max\":");
        json_f64(out, h.max());
        out.push_str(",\"total\":");
        let _ = write!(out, "{}", h.total());
        out.push_str(",\"counts\":[");
        for (j, c) in h.counts().iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{c}");
        }
        out.push_str("]}");
    }
    out.push_str("}}");
}

/// Appends `s` as a JSON string literal — the exporter's escaping rules,
/// public so the other JSON emitters in the workspace (the campaign
/// server's wire protocol, the canonical campaign artifact) escape
/// byte-identically to this crate.
pub fn json_string(out: &mut String, s: &str) {
    use fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite f64 in Rust's shortest-roundtrip decimal form (which
/// is valid JSON and deterministic for identical bits); non-finite
/// values, which JSON cannot carry, export as `null`. Public for the same
/// reason as [`json_string`].
pub fn json_f64(out: &mut String, x: f64) {
    use fmt::Write as _;
    if x.is_finite() {
        let _ = write!(out, "{x}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_is_inert_and_free_to_time() {
        let rec = NoopRecorder;
        assert!(!rec.enabled());
        rec.add("c", 3);
        rec.observe("d", 1.0);
        rec.record_hist("h", 0.5);
        assert_eq!(rec.now_ns(), 0);
        drop(Span::enter(&rec, "s"));
    }

    #[test]
    fn spans_measure_injected_clock_time() {
        let clock = Arc::new(ManualClock::new());
        let rec = MetricsRecorder::with_clock(Arc::clone(&clock) as Arc<dyn Clock>);
        {
            let _span = Span::enter(&rec, "work");
            clock.advance(250);
        }
        {
            let _span = Span::enter(&rec, "work");
            clock.advance(750);
        }
        let frame = rec.into_frame();
        let stat = frame.span("work").unwrap();
        assert_eq!(stat.count, 2);
        assert_eq!(stat.total_ns, 1_000);
    }

    #[test]
    fn span_stat_equality_and_debug_ignore_wall_time() {
        let a = SpanStat {
            count: 2,
            total_ns: 10,
        };
        let b = SpanStat {
            count: 2,
            total_ns: 99_999,
        };
        assert_eq!(a, b);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert!(!format!("{a:?}").contains("10"));
    }

    #[test]
    fn frames_merge_exactly_for_counters_spans_hists() {
        let mut a = MetricsFrame::new();
        a.add("ops", 5);
        a.spans.insert(
            "run".to_string(),
            SpanStat {
                count: 1,
                total_ns: 10,
            },
        );
        let mut ha = Histogram::new(0.0, 1.0, 4);
        ha.add(0.1);
        a.hists.insert("share".to_string(), ha);

        let mut b = MetricsFrame::new();
        b.add("ops", 7);
        b.add("jumps", 1);
        b.spans.insert(
            "run".to_string(),
            SpanStat {
                count: 2,
                total_ns: 30,
            },
        );
        let mut hb = Histogram::new(0.0, 1.0, 4);
        hb.add(0.9);
        b.hists.insert("share".to_string(), hb);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "frame merge must be order-independent");
        assert_eq!(ab.counter("ops"), 12);
        assert_eq!(ab.counter("jumps"), 1);
        assert_eq!(ab.span("run").unwrap().count, 3);
        assert_eq!(ab.span("run").unwrap().total_ns, 40);
        assert_eq!(ab.hists["share"].total(), 2);
    }

    #[test]
    fn rate_per_sec_derives_from_counter_and_span() {
        let mut f = MetricsFrame::new();
        f.add("driver.ops.functional", 2_000);
        f.spans.insert(
            "driver.wall.functional".to_string(),
            SpanStat {
                count: 1,
                total_ns: 1_000_000, // 1 ms → 2M ops/sec
            },
        );
        let rate = f
            .rate_per_sec("driver.ops.functional", "driver.wall.functional")
            .unwrap();
        assert!((rate - 2.0e6).abs() < 1e-6);
        // Missing counter, missing span, and zero wall time all yield None.
        assert!(f.rate_per_sec("nope", "driver.wall.functional").is_none());
        assert!(f.rate_per_sec("driver.ops.functional", "nope").is_none());
        f.spans.insert(
            "driver.wall.detail".to_string(),
            SpanStat {
                count: 3,
                total_ns: 0,
            },
        );
        f.add("driver.ops.detail", 10);
        assert!(f
            .rate_per_sec("driver.ops.detail", "driver.wall.detail")
            .is_none());
    }

    #[test]
    fn unregistered_histogram_values_are_dropped() {
        let rec = MetricsRecorder::new();
        rec.record_hist("nope", 0.5);
        rec.register_hist("yes", 0.0, 1.0, 2);
        rec.record_hist("yes", 0.5);
        let frame = rec.into_frame();
        assert!(!frame.hists.contains_key("nope"));
        assert_eq!(frame.hists["yes"].total(), 1);
    }

    #[test]
    fn jsonl_export_is_stable_and_escapes() {
        let rec = MetricsRecorder::with_clock(Arc::new(ManualClock::new()));
        rec.add("b.counter", 2);
        rec.add("a.counter", 1);
        rec.observe("dist", 1.5);
        rec.observe("dist", 2.5);
        rec.register_hist("h", 0.0, 1.0, 2);
        rec.record_hist("h", 0.25);
        rec.span_closed("span", 123);
        let mut report = MetricsReport::new();
        report.push_scope("odd \"name\"\n", rec.into_frame());
        let line = report.to_jsonl();
        assert_eq!(
            line,
            "{\"v\":1,\"scope\":\"odd \\\"name\\\"\\n\",\
             \"counters\":{\"a.counter\":1,\"b.counter\":2},\
             \"spans\":{\"span\":1},\
             \"dists\":{\"dist\":{\"n\":2,\"mean\":2,\"std\":0.7071067811865476}},\
             \"hists\":{\"h\":{\"min\":0,\"max\":1,\"total\":1,\"counts\":[1,0]}}}\n"
        );
        assert!(!line.contains("123"), "span wall time must not export");
    }

    #[test]
    fn scope_line_matches_report_export() {
        let rec = MetricsRecorder::with_clock(Arc::new(ManualClock::new()));
        rec.add("cells", 3);
        rec.observe("ipc", 1.25);
        let frame = rec.into_frame();
        let mut report = MetricsReport::new();
        report.push_scope("serve", frame.clone());
        let line = scope_line("serve", &frame);
        assert!(!line.ends_with('\n'));
        assert_eq!(format!("{line}\n"), report.to_jsonl());
    }

    #[test]
    fn report_scope_lookup_and_totals() {
        let mut a = MetricsFrame::new();
        a.add("x", 1);
        let mut b = MetricsFrame::new();
        b.add("x", 2);
        let mut report = MetricsReport::new();
        report.push_scope("campaign", a);
        report.push_scope("cell", b);
        assert_eq!(report.scope("cell").unwrap().counter("x"), 2);
        assert!(report.scope("missing").is_none());
        assert_eq!(report.totals().counter("x"), 3);
        assert!(!report.is_empty());
    }
}
