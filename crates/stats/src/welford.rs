//! Streaming mean and variance.

/// Numerically-stable streaming mean/variance accumulator (Welford's
/// algorithm).
///
/// # Example
///
/// ```
/// use pgss_stats::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.push(x);
/// }
/// assert_eq!(w.count(), 8);
/// assert!((w.mean() - 5.0).abs() < 1e-12);
/// assert!((w.population_stddev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Welford {
        Welford::default()
    }

    /// Adds one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Rebuilds an accumulator from its raw state, the inverse of
    /// ([`Welford::count`], [`Welford::mean`], [`Welford::m2`]). Exists so
    /// metric frames can round-trip through a byte codec bit-exactly; the
    /// caller is trusted to pass back a previously-read triple.
    pub fn from_parts(n: u64, mean: f64, m2: f64) -> Welford {
        Welford { n, mean, m2 }
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The raw sum of squared deviations (Welford's `M2`), the third piece
    /// of state [`Welford::from_parts`] needs to reconstruct the
    /// accumulator bit-exactly.
    pub fn m2(&self) -> f64 {
        self.m2
    }

    /// Mean of the observations; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (`÷ n`); `0.0` with fewer than one observation.
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance (`÷ (n − 1)`); `0.0` with fewer than two
    /// observations.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_stddev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_stddev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Coefficient of variation (sample stddev over mean); `0.0` when the
    /// mean is zero.
    pub fn coefficient_of_variation(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.sample_stddev() / self.mean.abs()
        }
    }

    /// Merges another accumulator into this one (parallel Welford / Chan's
    /// method). The result is as if every observation of `other` had been
    /// pushed into `self`.
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n;
        self.n += other.n;
    }
}

impl Extend<f64> for Welford {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Welford {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Welford {
        let mut w = Welford::new();
        w.extend(iter);
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zeroed() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.population_variance(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);
        assert_eq!(w.coefficient_of_variation(), 0.0);
    }

    #[test]
    fn single_observation() {
        let w: Welford = [3.5].into_iter().collect();
        assert_eq!(w.mean(), 3.5);
        assert_eq!(w.population_variance(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);
    }

    #[test]
    fn matches_batch_formulas() {
        let xs = [1.0, 2.5, -3.0, 7.25, 0.0, 4.0];
        let w: Welford = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var_p = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        let var_s = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.population_variance() - var_p).abs() < 1e-12);
        assert!((w.sample_variance() - var_s).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs = [1.0, 2.0, 3.0, 10.0, -4.0];
        let ys = [7.0, 7.0, 0.5];
        let mut a: Welford = xs.iter().copied().collect();
        let b: Welford = ys.iter().copied().collect();
        a.merge(&b);
        let all: Welford = xs.iter().chain(ys.iter()).copied().collect();
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.m2 - all.m2).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: Welford = [1.0, 2.0].into_iter().collect();
        let before = a;
        a.merge(&Welford::new());
        assert_eq!(a, before);
        let mut e = Welford::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn from_parts_roundtrips_bit_exactly() {
        let w: Welford = [1.0, 2.5, -3.0, 7.25].into_iter().collect();
        let back = Welford::from_parts(w.count(), w.mean(), w.m2());
        assert_eq!(w, back);
        assert_eq!(w.mean().to_bits(), back.mean().to_bits());
        assert_eq!(w.m2().to_bits(), back.m2().to_bits());
    }

    #[test]
    fn cv_is_scale_free() {
        let a: Welford = [1.0, 2.0, 3.0].into_iter().collect();
        let b: Welford = [10.0, 20.0, 30.0].into_iter().collect();
        assert!((a.coefficient_of_variation() - b.coefficient_of_variation()).abs() < 1e-12);
    }
}
