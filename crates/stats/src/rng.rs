//! A small in-tree deterministic RNG, replacing the external `rand` crate
//! so the workspace builds with no network access.
//!
//! The generator is xoshiro256++ (Blackman & Vigna), seeded from a single
//! `u64` through SplitMix64 — the same construction `rand`'s `SmallRng`
//! family uses. It is *not* cryptographic; it exists to give workload
//! generation, random projection, k-means seeding, and sample-order
//! shuffling a fast, reproducible stream. Equal seeds give bit-equal
//! streams on every platform.
//!
//! # Example
//!
//! ```
//! use pgss_stats::DetRng;
//!
//! let mut rng = DetRng::seed_from_u64(42);
//! let a = rng.next_u64();
//! assert_ne!(a, rng.next_u64());
//! assert_eq!(DetRng::seed_from_u64(42).next_u64(), a); // reproducible
//!
//! let mut xs = [1, 2, 3, 4, 5];
//! rng.shuffle(&mut xs);
//! let mut sorted = xs;
//! sorted.sort();
//! assert_eq!(sorted, [1, 2, 3, 4, 5]); // a permutation
//! ```
/// A deterministic xoshiro256++ generator; see the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    state: [u64; 4],
}

/// Advances a SplitMix64 state and returns the next output.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator whose 256-bit state is expanded from `seed` with
    /// SplitMix64 (so nearby seeds still give unrelated streams).
    pub fn seed_from_u64(seed: u64) -> DetRng {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { state }
    }

    /// The next 64 uniformly-distributed bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniformly-distributed signed 64-bit value.
    pub fn next_i64(&mut self) -> i64 {
        self.next_u64() as i64
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, n)` (Lemire's widening-multiply method,
    /// without the rejection step — bias is < 2⁻⁶⁴·n, immaterial here).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn range_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// A uniform index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn range_usize(&mut self, n: usize) -> usize {
        self.range_u64(n as u64) as usize
    }

    /// A uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not finite or `lo >= hi`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "bad range [{lo}, {hi})"
        );
        lo + self.next_f64() * (hi - lo)
    }

    /// Shuffles `xs` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.range_usize(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = DetRng::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = DetRng::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = DetRng::seed_from_u64(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = DetRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = DetRng::seed_from_u64(2);
        for _ in 0..10_000 {
            assert!(r.range_u64(13) < 13);
            assert!(r.range_usize(1) == 0);
            let x = r.range_f64(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = DetRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.range_usize(8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        DetRng::seed_from_u64(0).range_u64(0);
    }

    #[test]
    fn shuffle_is_a_permutation_and_moves_things() {
        let mut r = DetRng::seed_from_u64(4);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "a 100-element shuffle left everything in place");
    }

    #[test]
    fn shuffle_handles_degenerate_slices() {
        let mut r = DetRng::seed_from_u64(5);
        let mut empty: [u8; 0] = [];
        r.shuffle(&mut empty);
        let mut one = [42];
        r.shuffle(&mut one);
        assert_eq!(one, [42]);
    }

    #[test]
    fn rough_uniformity() {
        // 64 buckets x 10k draws: every bucket within 3x of the expected
        // count — a smoke test, not a statistical suite.
        let mut r = DetRng::seed_from_u64(6);
        let mut counts = [0u32; 64];
        for _ in 0..10_000 {
            counts[r.range_usize(64)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((50..470).contains(&c), "bucket {i}: {c}");
        }
    }
}
