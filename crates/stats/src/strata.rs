//! Stratified-estimator building blocks: Neyman allocation, composed
//! stratified variance, and between-replicate intervals.
//!
//! These back the two-phase stratified and ranked-set sampling techniques
//! (Ekman, *CPU Simulation Using Two-Phase Stratified Sampling* and *CPU
//! Simulation with Ranked Set Sampling and Repeated Subsampling*): a cheap
//! pilot pass measures per-stratum spread, [`neyman_allocation`] turns the
//! spread into a detail-sample budget split, and [`stratified_variance`]
//! composes the post-allocation per-stratum variances into the whole-program
//! estimator variance behind the 95 % interval.

use crate::ci::ConfidenceInterval;
use crate::welford::Welford;

/// Splits an integer sample `budget` across strata proportionally to
/// `weight × stddev` (Neyman's optimal allocation), deterministically.
///
/// `strata` holds `(weight, stddev)` pairs; both must be non-negative and
/// finite. Fractional shares are resolved with the largest-remainder
/// method, ties broken by larger remainder, then larger `weight × stddev`,
/// then lower index — so the result is a pure function of the inputs and
/// permutation-equivariant (reordering strata reorders the allocation the
/// same way). When every product is zero (no observed spread anywhere) the
/// budget is spread evenly, remainder to the lowest indices.
///
/// The returned vector always sums to exactly `budget` (an empty `strata`
/// returns an empty vector and drops the budget — there is nowhere to put
/// it).
///
/// ```
/// let n = pgss_stats::neyman_allocation(10, &[(0.5, 2.0), (0.5, 0.0)]);
/// assert_eq!(n, [10, 0]); // all spread lives in stratum 0
/// ```
///
/// # Panics
///
/// Panics if any weight or stddev is negative or non-finite.
pub fn neyman_allocation(budget: u64, strata: &[(f64, f64)]) -> Vec<u64> {
    if strata.is_empty() {
        return Vec::new();
    }
    let products: Vec<f64> = strata
        .iter()
        .map(|&(w, s)| {
            assert!(
                w >= 0.0 && s >= 0.0 && w.is_finite() && s.is_finite(),
                "neyman_allocation needs finite non-negative (weight, stddev), got ({w}, {s})"
            );
            w * s
        })
        .collect();
    let total: f64 = products.iter().sum();
    if total <= 0.0 {
        // No spread signal: even split, remainder to the front.
        let base = budget / strata.len() as u64;
        let extra = (budget % strata.len() as u64) as usize;
        return (0..strata.len())
            .map(|i| base + u64::from(i < extra))
            .collect();
    }
    // Largest-remainder apportionment of the exact proportional shares.
    let shares: Vec<f64> = products.iter().map(|p| p / total * budget as f64).collect();
    let mut alloc: Vec<u64> = shares.iter().map(|s| s.floor() as u64).collect();
    let assigned: u64 = alloc.iter().sum();
    let mut order: Vec<usize> = (0..strata.len()).collect();
    order.sort_by(|&a, &b| {
        let ra = shares[a] - shares[a].floor();
        let rb = shares[b] - shares[b].floor();
        rb.partial_cmp(&ra)
            .expect("finite remainders")
            .then(
                products[b]
                    .partial_cmp(&products[a])
                    .expect("finite products"),
            )
            .then(a.cmp(&b))
    });
    for &i in order.iter().take((budget - assigned) as usize) {
        alloc[i] += 1;
    }
    alloc
}

/// Variance of a stratified mean: `Σ wᵢ² sᵢ² / nᵢ` over strata with at
/// least one sample.
///
/// `strata` holds `(weight, sample_variance, n)` triples. Strata with
/// `n == 0` contribute nothing (they also contribute nothing to the point
/// estimate — the caller substitutes a fallback mean for them, which has no
/// sampling-variance model).
///
/// ```
/// let v = pgss_stats::stratified_variance(&[(0.5, 4.0, 4), (0.5, 0.0, 2)]);
/// assert!((v - 0.25).abs() < 1e-12); // 0.25·4/4 + 0.25·0/2
/// ```
pub fn stratified_variance(strata: &[(f64, f64, u64)]) -> f64 {
    strata
        .iter()
        .filter(|&&(_, _, n)| n > 0)
        .map(|&(w, s2, n)| w * w * s2 / n as f64)
        .sum()
}

/// The between-replicate confidence interval of a repeated-subsampling
/// estimator: each replicate is one full ranked-set estimate, and the
/// interval is the Gaussian CI of their mean.
///
/// ```
/// use pgss_stats::{replicate_ci, Z_95};
/// let ci = replicate_ci(&[1.0, 1.1, 0.9, 1.0], Z_95);
/// assert_eq!(ci.n, 4);
/// assert!(ci.half_width.is_finite());
/// ```
pub fn replicate_ci(estimates: &[f64], z: f64) -> ConfidenceInterval {
    let w: Welford = estimates.iter().copied().collect();
    ConfidenceInterval::from_welford(&w, z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ci::Z_95;

    #[test]
    fn allocation_sums_to_budget() {
        let strata = [(0.3, 1.0), (0.5, 0.25), (0.2, 3.0)];
        for budget in [0u64, 1, 7, 100] {
            let alloc = neyman_allocation(budget, &strata);
            assert_eq!(alloc.iter().sum::<u64>(), budget, "budget {budget}");
        }
    }

    #[test]
    fn allocation_follows_weight_times_stddev() {
        let alloc = neyman_allocation(100, &[(0.5, 1.0), (0.25, 1.0), (0.25, 3.0)]);
        // products 0.5, 0.25, 0.75 → 33.3/16.7/50 of 100.
        assert_eq!(alloc, [33, 17, 50]);
    }

    #[test]
    fn zero_spread_splits_evenly() {
        assert_eq!(neyman_allocation(7, &[(0.5, 0.0), (0.5, 0.0)]), [4, 3]);
        assert_eq!(
            neyman_allocation(6, &[(1.0, 0.0), (0.0, 0.0), (0.0, 0.0)]),
            [2, 2, 2]
        );
    }

    #[test]
    fn empty_strata_is_empty() {
        assert!(neyman_allocation(10, &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_stddev_panics() {
        neyman_allocation(1, &[(0.5, -1.0)]);
    }

    #[test]
    fn stratified_variance_skips_empty_strata() {
        let v = stratified_variance(&[(0.5, 4.0, 0), (0.5, 4.0, 4)]);
        assert!((v - 0.25).abs() < 1e-12);
        assert_eq!(stratified_variance(&[]), 0.0);
    }

    #[test]
    fn replicate_ci_matches_welford() {
        let xs = [2.0, 2.5, 1.5, 2.0, 2.2];
        let ci = replicate_ci(&xs, Z_95);
        let w: Welford = xs.iter().copied().collect();
        assert_eq!(ci.mean, w.mean());
        assert_eq!(ci.n, 5);
        assert!((ci.half_width - Z_95 * w.sample_stddev() / 5f64.sqrt()).abs() < 1e-12);
    }
}
