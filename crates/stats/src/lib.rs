//! Statistics for sampled simulation: streaming moments, Gaussian confidence
//! intervals, histograms, and aggregate means.
//!
//! SMARTS-style techniques decide when to *stop* sampling by checking a
//! Gaussian confidence interval over the samples collected so far; the paper
//! shows that this is exactly where they go wrong on phase-structured
//! programs (the sample population is polymodal, not Gaussian). This crate
//! supplies the statistical machinery both for the techniques themselves
//! ([`Welford`], [`ConfidenceInterval`]) and for the evaluation figures
//! ([`Histogram`] for Fig. 3, [`amean`]/[`gmean`] for the summary columns of
//! Figs. 11–12).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ci;
mod histogram;
mod rng;
mod strata;
mod welford;

pub use ci::{ConfidenceInterval, Z_95, Z_997};
pub use histogram::Histogram;
pub use rng::DetRng;
pub use strata::{neyman_allocation, replicate_ci, stratified_variance};
pub use welford::Welford;

/// Arithmetic mean of a slice; `None` when empty.
///
/// ```
/// assert_eq!(pgss_stats::amean(&[1.0, 2.0, 3.0]), Some(2.0));
/// assert_eq!(pgss_stats::amean(&[]), None);
/// ```
pub fn amean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Geometric mean of a slice of non-negative values; `None` when empty.
///
/// Zeros are clamped to `1e-12` so a single perfect result does not collapse
/// the mean to zero (the convention used for error tables, where a measured
/// error of exactly 0 % is a rounding artifact).
///
/// ```
/// let g = pgss_stats::gmean(&[1.0, 100.0]).unwrap();
/// assert!((g - 10.0).abs() < 1e-9);
/// ```
///
/// # Panics
///
/// Panics if any value is negative.
pub fn gmean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x >= 0.0, "gmean requires non-negative values, got {x}");
            x.max(1e-12).ln()
        })
        .sum();
    Some((sum / xs.len() as f64).exp())
}

/// Weighted arithmetic mean: `Σ wᵢxᵢ / Σ wᵢ`; `None` when weights sum to
/// zero.
///
/// Used to compose per-phase CPI into a whole-program estimate, weighting
/// each phase by its instruction count.
///
/// ```
/// let m = pgss_stats::weighted_mean(&[(1.0, 1.0), (3.0, 3.0)]).unwrap();
/// assert!((m - 2.5).abs() < 1e-12);
/// ```
pub fn weighted_mean(pairs: &[(f64, f64)]) -> Option<f64> {
    let (mut num, mut den) = (0.0, 0.0);
    for &(x, w) in pairs {
        num += x * w;
        den += w;
    }
    if den == 0.0 {
        None
    } else {
        Some(num / den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amean_basics() {
        assert_eq!(amean(&[4.0]), Some(4.0));
        assert_eq!(amean(&[1.0, 3.0]), Some(2.0));
        assert_eq!(amean(&[]), None);
    }

    #[test]
    fn gmean_basics() {
        assert_eq!(gmean(&[]), None);
        let g = gmean(&[2.0, 8.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-12);
        // Zero is clamped, not propagated.
        assert!(gmean(&[0.0, 1.0]).unwrap() > 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn gmean_rejects_negative() {
        let _ = gmean(&[-1.0]);
    }

    #[test]
    fn weighted_mean_basics() {
        assert_eq!(weighted_mean(&[]), None);
        assert_eq!(weighted_mean(&[(5.0, 0.0)]), None);
        assert_eq!(weighted_mean(&[(5.0, 2.0)]), Some(5.0));
        let m = weighted_mean(&[(1.0, 9.0), (11.0, 1.0)]).unwrap();
        assert!((m - 2.0).abs() < 1e-12);
    }
}
