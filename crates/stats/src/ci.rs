//! Gaussian confidence intervals, as used by SMARTS/TurboSMARTS stopping
//! rules.

use crate::welford::Welford;

/// The z-score for 99.7 % two-sided confidence (±3σ), the bound the paper's
/// TurboSMARTS configuration targets ("3 % accuracy with 99.7 confidence").
pub const Z_997: f64 = 3.0;

/// The z-score for 95 % two-sided confidence — the level every technique
/// reports its IPC interval at (`Estimate::ci`), and the level
/// `tests/statistical_validation.rs` empirically checks coverage against.
pub const Z_95: f64 = 1.959_963_984_540_054;

/// A Gaussian confidence interval on a sample mean.
///
/// The half-width is `z · s / √n` where `s` is the sample standard
/// deviation. This is only *valid* when the sample population is
/// approximately Gaussian — the paper's central observation is that
/// phase-structured programs violate this, so intervals computed this way
/// understate the real error. The reproduction keeps the flawed math
/// faithfully and lets the experiments expose it.
///
/// # Example
///
/// ```
/// use pgss_stats::{ConfidenceInterval, Welford, Z_997};
///
/// let w: Welford = (0..100).map(|i| 1.0 + 0.01 * (i % 3) as f64).collect();
/// let ci = ConfidenceInterval::from_welford(&w, Z_997);
/// assert!(ci.half_width > 0.0);
/// assert!(ci.meets_relative(0.03)); // well within ±3 %
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// The sample mean the interval is centred on.
    pub mean: f64,
    /// Half the interval width (`z · s / √n`).
    pub half_width: f64,
    /// Number of samples behind the estimate.
    pub n: u64,
}

impl ConfidenceInterval {
    /// Builds the interval from sample statistics.
    ///
    /// With fewer than two samples the half-width is infinite: no finite
    /// confidence claim can be made.
    pub fn new(mean: f64, sample_stddev: f64, n: u64, z: f64) -> ConfidenceInterval {
        let half_width = if n < 2 {
            f64::INFINITY
        } else {
            z * sample_stddev / (n as f64).sqrt()
        };
        ConfidenceInterval {
            mean,
            half_width,
            n,
        }
    }

    /// Builds the interval from a [`Welford`] accumulator.
    pub fn from_welford(w: &Welford, z: f64) -> ConfidenceInterval {
        ConfidenceInterval::new(w.mean(), w.sample_stddev(), w.count(), z)
    }

    /// Returns `true` when the half-width is within `rel` of the mean
    /// (e.g. `rel = 0.03` for the paper's ±3 % target).
    ///
    /// A zero mean never meets a relative target (relative error is
    /// undefined there).
    pub fn meets_relative(&self, rel: f64) -> bool {
        self.mean != 0.0 && self.half_width <= rel * self.mean.abs()
    }

    /// The interval bounds `(low, high)`.
    pub fn bounds(&self) -> (f64, f64) {
        (self.mean - self.half_width, self.mean + self.half_width)
    }

    /// Returns `true` if `value` lies inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        let (lo, hi) = self.bounds();
        lo <= value && value <= hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn too_few_samples_is_infinite() {
        let ci = ConfidenceInterval::new(1.0, 0.5, 1, Z_997);
        assert!(ci.half_width.is_infinite());
        assert!(!ci.meets_relative(0.5));
        assert!(ci.contains(1.0));
    }

    #[test]
    fn half_width_formula() {
        let ci = ConfidenceInterval::new(2.0, 0.4, 16, 3.0);
        assert!((ci.half_width - 3.0 * 0.4 / 4.0).abs() < 1e-12);
        let (lo, hi) = ci.bounds();
        assert!((lo - 1.7).abs() < 1e-12);
        assert!((hi - 2.3).abs() < 1e-12);
    }

    #[test]
    fn shrinks_with_n() {
        let a = ConfidenceInterval::new(1.0, 1.0, 100, 3.0);
        let b = ConfidenceInterval::new(1.0, 1.0, 400, 3.0);
        assert!((a.half_width / b.half_width - 2.0).abs() < 1e-12);
    }

    #[test]
    fn relative_target() {
        let ci = ConfidenceInterval::new(1.0, 0.1, 10_000, 3.0); // hw = 0.003
        assert!(ci.meets_relative(0.003 + 1e-12));
        assert!(!ci.meets_relative(0.002));
        let zero = ConfidenceInterval::new(0.0, 0.0, 100, 3.0);
        assert!(!zero.meets_relative(0.03));
    }

    #[test]
    fn identical_samples_collapse_immediately() {
        let w: Welford = std::iter::repeat_n(2.5, 3).collect();
        let ci = ConfidenceInterval::from_welford(&w, Z_997);
        assert_eq!(ci.half_width, 0.0);
        assert!(ci.meets_relative(0.0001));
    }
}
