//! Fixed-range histograms (Fig. 3's IPC distribution).

/// A fixed-range, equal-width histogram over `f64` observations.
///
/// Out-of-range observations are clamped into the first/last bin so the
/// total count always equals the number of observations (IPC traces have
/// occasional startup outliers that should not vanish).
///
/// # Example
///
/// ```
/// use pgss_stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 2.0, 4);
/// for x in [0.1, 0.6, 0.7, 1.9, 5.0] {
///     h.add(x);
/// }
/// assert_eq!(h.counts(), &[1, 2, 0, 2]); // 5.0 clamps into the last bin
/// assert_eq!(h.total(), 5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    min: f64,
    max: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram covering `[min, max)` with `bins` bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`, if `min >= max`, or if either bound is not
    /// finite.
    pub fn new(min: f64, max: f64, bins: usize) -> Histogram {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(min.is_finite() && max.is_finite(), "bounds must be finite");
        assert!(min < max, "min must be below max");
        Histogram {
            min,
            max,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Rebuilds a histogram from its raw state ([`Histogram::min`],
    /// [`Histogram::max`], [`Histogram::counts`]); the total is recomputed
    /// as the bin sum, which [`Histogram::add_weighted`] keeps invariant.
    /// Exists so metric frames can round-trip through a byte codec.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Histogram::new`].
    pub fn from_parts(min: f64, max: f64, counts: Vec<u64>) -> Histogram {
        assert!(!counts.is_empty(), "histogram needs at least one bin");
        assert!(min.is_finite() && max.is_finite(), "bounds must be finite");
        assert!(min < max, "min must be below max");
        let total = counts.iter().sum();
        Histogram {
            min,
            max,
            counts,
            total,
        }
    }

    /// Adds one observation (optionally weighted via [`Histogram::add_weighted`]).
    pub fn add(&mut self, x: f64) {
        self.add_weighted(x, 1);
    }

    /// Adds an observation with integer weight `w` (e.g. cycles spent at
    /// this IPC, as in the paper's Fig. 3 right panel).
    pub fn add_weighted(&mut self, x: f64, w: u64) {
        let bins = self.counts.len();
        let span = self.max - self.min;
        let raw = ((x - self.min) / span * bins as f64).floor();
        let idx = if raw.is_nan() {
            0
        } else {
            (raw as i64).clamp(0, bins as i64 - 1) as usize
        };
        self.counts[idx] += w;
        self.total += w;
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Lower bound of the covered range.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Upper bound of the covered range.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Folds another histogram over the *same range and bin count* into
    /// this one by adding bin counts. Because binning is a pure function
    /// of the value and the (shared) range, merge is exact: any
    /// partition of an observation stream into sub-histograms merges back
    /// to the histogram of the whole stream. The per-worker metrics merge
    /// in `pgss-obs` relies on exactly this property.
    ///
    /// # Panics
    ///
    /// Panics if the ranges or bin counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.min == other.min
                && self.max == other.max
                && self.counts.len() == other.counts.len(),
            "cannot merge histograms with different shapes: [{}, {})×{} vs [{}, {})×{}",
            self.min,
            self.max,
            self.counts.len(),
            other.min,
            other.max,
            other.counts.len()
        );
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
    }

    /// Total weight added.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The `(low, high)` value range of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        assert!(i < self.counts.len());
        let w = (self.max - self.min) / self.counts.len() as f64;
        (self.min + w * i as f64, self.min + w * (i + 1) as f64)
    }

    /// Fraction of total weight in bin `i`; `0.0` when empty.
    pub fn fraction(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / self.total as f64
        }
    }

    /// Number of local maxima ("modes") in the smoothed bin profile —
    /// a crude polymodality detector used to verify that phase-structured
    /// workloads produce non-Gaussian IPC distributions (Fig. 3).
    ///
    /// A bin is a mode if its count exceeds both neighbours and is at least
    /// `min_fraction` of the total weight.
    pub fn modes(&self, min_fraction: f64) -> usize {
        let c = &self.counts;
        let mut modes = 0;
        for i in 0..c.len() {
            let left = if i == 0 { 0 } else { c[i - 1] };
            let right = if i + 1 == c.len() { 0 } else { c[i + 1] };
            if c[i] > left && c[i] >= right && self.fraction(i) >= min_fraction {
                modes += 1;
            }
        }
        modes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_is_exact_on_edges() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        h.add(0.0);
        h.add(0.0999);
        h.add(0.1);
        h.add(0.999);
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[1], 1);
        assert_eq!(h.counts()[9], 1);
    }

    #[test]
    fn out_of_range_clamps() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(-5.0);
        h.add(5.0);
        h.add(f64::NAN);
        assert_eq!(h.counts(), &[2, 1]);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn weighted_adds() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        h.add_weighted(0.5, 10);
        h.add_weighted(3.5, 30);
        assert_eq!(h.total(), 40);
        assert!((h.fraction(3) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn bin_ranges_tile_span() {
        let h = Histogram::new(-1.0, 1.0, 4);
        assert_eq!(h.bin_range(0), (-1.0, -0.5));
        assert_eq!(h.bin_range(3), (0.5, 1.0));
    }

    #[test]
    fn bimodal_distribution_has_two_modes() {
        let mut h = Histogram::new(0.0, 1.0, 20);
        for _ in 0..100 {
            h.add(0.25);
            h.add(0.75);
        }
        h.add(0.5); // noise floor between the modes
        assert_eq!(h.modes(0.05), 2);
    }

    #[test]
    fn unimodal_distribution_has_one_mode() {
        let mut h = Histogram::new(0.0, 1.0, 20);
        for i in 0..1000 {
            // Roughly triangular around 0.5.
            let x = 0.5 + 0.2 * (((i * 37) % 100) as f64 / 100.0 - 0.5);
            h.add(x);
        }
        assert_eq!(h.modes(0.05), 1);
    }

    #[test]
    fn from_parts_roundtrips() {
        let mut h = Histogram::new(0.0, 2.0, 4);
        for x in [0.1, 0.6, 0.7, 1.9, 5.0] {
            h.add(x);
        }
        let back = Histogram::from_parts(h.min(), h.max(), h.counts().to_vec());
        assert_eq!(h, back);
        assert_eq!(back.total(), 5);
    }

    #[test]
    fn merge_adds_bins_and_total() {
        let mut a = Histogram::new(0.0, 1.0, 4);
        a.add(0.1);
        a.add_weighted(0.9, 3);
        let mut b = Histogram::new(0.0, 1.0, 4);
        b.add(0.1);
        b.add(0.6);
        a.merge(&b);
        assert_eq!(a.counts(), &[2, 0, 1, 3]);
        assert_eq!(a.total(), 6);
    }

    #[test]
    #[should_panic(expected = "different shapes")]
    fn merge_shape_mismatch_panics() {
        let mut a = Histogram::new(0.0, 1.0, 4);
        a.merge(&Histogram::new(0.0, 1.0, 8));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "below max")]
    fn inverted_range_panics() {
        let _ = Histogram::new(1.0, 0.0, 4);
    }
}
