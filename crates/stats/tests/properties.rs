//! Randomized property tests for the mergeable accumulators.
//!
//! The per-worker metrics merge in `pgss-obs` — and therefore the
//! byte-identical campaign metrics guarantee — rests on two algebraic
//! properties checked here over many seeded random cases (a hermetic,
//! deterministic stand-in for a property-testing crate):
//!
//! * [`Welford::merge`] behaves like pushing the other side's
//!   observations: any partition of a stream, merged in any grouping or
//!   order, agrees with the sequential accumulation up to floating-point
//!   tolerance (counts exactly).
//! * [`Histogram::merge`] is *exact*: binning is a pure function of the
//!   value and the shared range, so partition-then-merge reproduces the
//!   whole-stream histogram bit for bit.
//!
//! The stratified-estimator helpers behind `TwoPhaseStratified` and
//! `RankedSet` get the same treatment: Neyman allocation spends its budget
//! exactly and commutes with stratum permutation, the replicate interval
//! shrinks monotonically as the replicate count grows, and the composed
//! stratified variance matches a brute-force Σ wₕ²sₕ²/nₕ oracle.

use pgss_stats::{
    neyman_allocation, replicate_ci, stratified_variance, DetRng, Histogram, Welford, Z_95,
};

const CASES: u64 = 200;

/// Closeness for quantities accumulated in different float orders. The
/// floor of 1.0 makes the bound absolute near zero: streams with
/// ±1e6 outliers can cancel to a tiny mean whose absolute error is set by
/// the outlier magnitude, not the mean's.
fn close(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= 1e-7 * scale
}

/// A random observation stream with occasional large-magnitude outliers,
/// so cancellation errors would surface if the merge were not numerically
/// stable.
fn stream(rng: &mut DetRng, len: usize) -> Vec<f64> {
    (0..len)
        .map(|_| {
            let x = rng.next_f64() * 2.0 - 1.0;
            if rng.range_usize(10) == 0 {
                x * 1e6
            } else {
                x
            }
        })
        .collect()
}

/// Splits `xs` into 1..=5 contiguous chunks at random cut points.
fn random_partition<'a>(rng: &mut DetRng, xs: &'a [f64]) -> Vec<&'a [f64]> {
    let pieces = 1 + rng.range_usize(5);
    let mut cuts: Vec<usize> = (0..pieces - 1)
        .map(|_| rng.range_usize(xs.len() + 1))
        .collect();
    cuts.sort_unstable();
    let mut out = Vec::with_capacity(pieces);
    let mut start = 0;
    for &c in &cuts {
        out.push(&xs[start..c]);
        start = c;
    }
    out.push(&xs[start..]);
    out
}

fn welford_of(xs: &[f64]) -> Welford {
    let mut w = Welford::new();
    for &x in xs {
        w.push(x);
    }
    w
}

#[test]
fn welford_merge_matches_sequential_push() {
    let mut rng = DetRng::seed_from_u64(0x5EED_0001);
    for _ in 0..CASES {
        let len = 1 + rng.range_usize(400);
        let xs = stream(&mut rng, len);
        let whole = welford_of(&xs);
        let mut merged = Welford::new();
        for chunk in random_partition(&mut rng, &xs) {
            merged.merge(&welford_of(chunk));
        }
        assert_eq!(merged.count(), whole.count());
        assert!(
            close(merged.mean(), whole.mean()),
            "mean {} vs {}",
            merged.mean(),
            whole.mean()
        );
        assert!(
            close(merged.sample_variance(), whole.sample_variance()),
            "variance {} vs {}",
            merged.sample_variance(),
            whole.sample_variance()
        );
    }
}

#[test]
fn welford_merge_is_order_independent() {
    let mut rng = DetRng::seed_from_u64(0x5EED_0002);
    for _ in 0..CASES {
        let len = 1 + rng.range_usize(400);
        let xs = stream(&mut rng, len);
        let mut chunks: Vec<Welford> = random_partition(&mut rng, &xs)
            .into_iter()
            .map(welford_of)
            .collect();
        let mut forward = Welford::new();
        for c in &chunks {
            forward.merge(c);
        }
        rng.shuffle(&mut chunks);
        let mut shuffled = Welford::new();
        for c in &chunks {
            shuffled.merge(c);
        }
        assert_eq!(forward.count(), shuffled.count());
        assert!(close(forward.mean(), shuffled.mean()));
        assert!(close(forward.sample_variance(), shuffled.sample_variance()));
    }
}

#[test]
fn welford_merge_is_associative() {
    let mut rng = DetRng::seed_from_u64(0x5EED_0003);
    for _ in 0..CASES {
        let draw = |rng: &mut DetRng| {
            let len = rng.range_usize(100);
            welford_of(&stream(rng, len))
        };
        let (a, b, c) = (draw(&mut rng), draw(&mut rng), draw(&mut rng));
        // (a ⊕ b) ⊕ c
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        assert_eq!(left.count(), right.count());
        assert!(close(left.mean(), right.mean()));
        assert!(close(left.sample_variance(), right.sample_variance()));
    }
}

#[test]
fn welford_merge_with_empty_is_identity() {
    let mut rng = DetRng::seed_from_u64(0x5EED_0004);
    for _ in 0..CASES {
        let len = rng.range_usize(50);
        let w = welford_of(&stream(&mut rng, len));
        let mut left = Welford::new();
        left.merge(&w);
        let mut right = w;
        right.merge(&Welford::new());
        // Identity merges copy state, so even the float fields are
        // bit-identical — no tolerance needed.
        assert_eq!(left, w);
        assert_eq!(right, w);
    }
}

/// Neyman allocation spends exactly the requested budget, whatever the
/// (weight, stddev) profile — the largest-remainder rounding never loses
/// or invents a sample.
#[test]
fn neyman_allocation_sums_to_budget() {
    let mut rng = DetRng::seed_from_u64(0x5EED_0006);
    for _ in 0..CASES {
        let k = 1 + rng.range_usize(12);
        let strata: Vec<(f64, f64)> = (0..k)
            .map(|_| {
                // Mix of zero and non-zero products, including strata with
                // weight but no spread and vice versa.
                let w = if rng.range_usize(5) == 0 {
                    0.0
                } else {
                    rng.next_f64()
                };
                let s = if rng.range_usize(5) == 0 {
                    0.0
                } else {
                    rng.next_f64() * 10.0
                };
                (w, s)
            })
            .collect();
        let budget = rng.range_u64(200);
        let alloc = neyman_allocation(budget, &strata);
        assert_eq!(alloc.len(), strata.len());
        assert_eq!(
            alloc.iter().sum::<u64>(),
            budget,
            "allocation must spend the budget exactly: {alloc:?} for {strata:?}"
        );
    }
}

/// Permuting the strata permutes the allocation: a stratum's share depends
/// only on its own (weight, stddev), never on its position in the table.
#[test]
fn neyman_allocation_is_permutation_invariant() {
    let mut rng = DetRng::seed_from_u64(0x5EED_0007);
    for _ in 0..CASES {
        let k = 2 + rng.range_usize(10);
        // Distinct w·s products so the permutation map is unambiguous
        // (ties may legitimately resolve by index under largest-remainder
        // rounding).
        let strata: Vec<(f64, f64)> = (0..k)
            .map(|i| (0.1 + i as f64, 1.0 + rng.next_f64()))
            .collect();
        let budget = rng.range_u64(100);
        let base = neyman_allocation(budget, &strata);

        let mut perm: Vec<usize> = (0..k).collect();
        rng.shuffle(&mut perm);
        let permuted: Vec<(f64, f64)> = perm.iter().map(|&i| strata[i]).collect();
        let permuted_alloc = neyman_allocation(budget, &permuted);
        let unpermuted: Vec<u64> = {
            let mut v = vec![0u64; k];
            for (j, &i) in perm.iter().enumerate() {
                v[i] = permuted_alloc[j];
            }
            v
        };
        assert_eq!(
            base, unpermuted,
            "allocation must commute with permutation: {strata:?}"
        );
    }
}

/// Replicating the replicate set shrinks the interval strictly and
/// monotonically: for a fixed empirical distribution, the half-width of
/// the mean's interval scales down as the replicate count grows (the
/// deterministic face of ranked-set sampling's "more replicates, tighter
/// estimate" claim).
#[test]
fn replicate_interval_shrinks_monotonically_with_replicates() {
    let mut rng = DetRng::seed_from_u64(0x5EED_0008);
    for _ in 0..CASES {
        let len = 2 + rng.range_usize(20);
        let base = stream(&mut rng, len);
        let hw = |m: usize| {
            let reps: Vec<f64> = base.iter().cycle().take(base.len() * m).copied().collect();
            let ci = replicate_ci(&reps, Z_95);
            assert_eq!(ci.n, (base.len() * m) as u64);
            ci.half_width
        };
        let widths: Vec<f64> = (1..=4).map(hw).collect();
        if widths[0] == 0.0 {
            continue; // a constant stream has nothing to shrink
        }
        for pair in widths.windows(2) {
            assert!(
                pair[1] < pair[0],
                "half-width must shrink with replicate count: {widths:?}"
            );
        }
    }
}

/// The composed stratified variance matches a brute-force oracle:
/// Σ wₕ² sₕ² / nₕ over strata with at least one sample, computed here
/// from raw per-stratum observation streams through [`Welford`].
#[test]
fn stratified_variance_matches_brute_force_oracle() {
    let mut rng = DetRng::seed_from_u64(0x5EED_0009);
    for _ in 0..CASES {
        let k = 1 + rng.range_usize(8);
        let mut inputs: Vec<(f64, f64, u64)> = Vec::with_capacity(k);
        let mut oracle = 0.0f64;
        for _ in 0..k {
            let w = rng.next_f64();
            let n = rng.range_usize(6);
            let xs = stream(&mut rng, n);
            let acc = welford_of(&xs);
            inputs.push((w, acc.sample_variance(), acc.count()));
            if n > 0 {
                oracle += w * w * acc.sample_variance() / n as f64;
            }
        }
        let composed = stratified_variance(&inputs);
        assert!(
            close(composed, oracle),
            "stratified variance {composed} vs oracle {oracle} for {inputs:?}"
        );
    }
}

#[test]
fn histogram_partition_then_merge_is_exact() {
    let mut rng = DetRng::seed_from_u64(0x5EED_0005);
    for _ in 0..CASES {
        let bins = 1 + rng.range_usize(32);
        let len = rng.range_usize(500);
        let xs = stream(&mut rng, len);
        // Range deliberately narrower than the outliers: clamping must
        // survive partitioning too.
        let mut whole = Histogram::new(-1.0, 1.0, bins);
        for &x in &xs {
            whole.add(x);
        }
        let mut merged = Histogram::new(-1.0, 1.0, bins);
        for chunk in random_partition(&mut rng, &xs) {
            let mut part = Histogram::new(-1.0, 1.0, bins);
            for &x in chunk {
                part.add(x);
            }
            merged.merge(&part);
        }
        assert_eq!(merged, whole, "bin counts must merge exactly");
        assert_eq!(merged.total(), xs.len() as u64);
    }
}
