//! Property-based tests for the ISA crate.

use pgss_isa::{AluOp, Cond, Instr, Program, Reg};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0usize..32).prop_map(|i| Reg::from_index(i).unwrap())
}

/// Arbitrary instruction with control-flow targets inside `0..len`.
fn arb_instr(len: u32) -> impl Strategy<Value = Instr> {
    let alu = (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rs, rt)| Instr::Alu {
        op: AluOp::Add,
        rd,
        rs,
        rt,
    });
    let li = (arb_reg(), any::<i64>()).prop_map(|(rd, imm)| Instr::Li { rd, imm });
    let ld = (arb_reg(), arb_reg(), -16i64..16).prop_map(|(rd, base, offset)| Instr::Load {
        rd,
        base,
        offset,
    });
    let st = (arb_reg(), arb_reg(), -16i64..16).prop_map(|(rs, base, offset)| Instr::Store {
        rs,
        base,
        offset,
    });
    let br = (arb_reg(), arb_reg(), 0u32..len).prop_map(|(rs, rt, target)| Instr::Branch {
        cond: Cond::Ne,
        rs,
        rt,
        target,
    });
    let jmp = (0u32..len).prop_map(|target| Instr::Jump { target });
    prop_oneof![4 => alu, 2 => li, 2 => ld, 2 => st, 2 => br, 1 => jmp]
}

fn arb_program() -> impl Strategy<Value = Program> {
    (1usize..64).prop_flat_map(|n| {
        proptest::collection::vec(arb_instr(n as u32 + 1), n).prop_map(|mut v| {
            v.push(Instr::Halt);
            Program::new(v)
        })
    })
}

proptest! {
    /// Basic blocks tile the program: contiguous, non-empty, in order.
    #[test]
    fn blocks_partition_program(p in arb_program()) {
        let mut covered = 0u32;
        for b in p.blocks() {
            prop_assert_eq!(b.start, covered);
            prop_assert!(b.end > b.start);
            covered = b.end;
        }
        prop_assert_eq!(covered, p.len() as u32);
    }

    /// `block_of` is consistent with the block table.
    #[test]
    fn block_of_matches_blocks(p in arb_program()) {
        for pc in 0..p.len() as u32 {
            let b = p.blocks()[p.block_of(pc) as usize];
            prop_assert!(b.start <= pc && pc < b.end);
        }
    }

    /// Every statically-known target starts a block, and every instruction
    /// after a control-flow instruction starts a block.
    #[test]
    fn leaders_start_blocks(p in arb_program()) {
        for pc in 0..p.len() as u32 {
            let i = p.instr(pc);
            if let Some(t) = i.static_target() {
                let b = p.blocks()[p.block_of(t) as usize];
                prop_assert_eq!(b.start, t);
            }
            if i.is_control_flow() && pc + 1 < p.len() as u32 {
                let b = p.blocks()[p.block_of(pc + 1) as usize];
                prop_assert_eq!(b.start, pc + 1);
            }
        }
    }

    /// ALU operations never panic on any operand values.
    #[test]
    fn alu_total(a in any::<i64>(), b in any::<i64>()) {
        for op in [
            AluOp::Add, AluOp::Sub, AluOp::Mul, AluOp::Div, AluOp::Rem,
            AluOp::And, AluOp::Or, AluOp::Xor, AluOp::Sll, AluOp::Srl,
            AluOp::Sra, AluOp::Slt,
        ] {
            let _ = op.apply(a, b);
        }
    }
}
