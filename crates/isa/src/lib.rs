//! A small load/store RISC instruction set used as the execution substrate of
//! the PGSS-Sim reproduction.
//!
//! The ISPASS 2007 paper evaluates sampled simulation on SPEC2000 binaries
//! compiled by the IMPACT toolchain. That substrate is unavailable, so this
//! crate defines a compact RISC-style instruction set in which the synthetic
//! benchmarks of `pgss-workloads` are written as *real programs*: assembled
//! basic blocks, loops, data-dependent branches, and genuine address streams.
//! Everything downstream — basic-block vectors, cache behaviour, branch
//! prediction, instruction-level parallelism — is emergent from executing
//! these programs, not scripted.
//!
//! # Overview
//!
//! * [`Instr`] — the instruction set: integer ALU ops, floating-point ops,
//!   loads/stores, conditional branches, direct and indirect jumps.
//! * [`Program`] — an assembled instruction sequence plus derived static
//!   basic-block structure (used for full basic-block vectors).
//! * [`Assembler`] — a label-based builder that resolves forward references
//!   and produces a [`Program`].
//! * [`DecodedProgram`] — a one-shot lowering of a [`Program`] into a flat
//!   [`DecodedOp`] array with pre-resolved operands and superblock run
//!   lengths, the input format of the fast interpreter in `pgss-cpu`.
//!
//! # Example
//!
//! Assemble a loop that sums the first 10 integers:
//!
//! ```
//! use pgss_isa::{Assembler, Cond, Reg};
//!
//! # fn main() -> Result<(), pgss_isa::AsmError> {
//! let mut asm = Assembler::new();
//! let (acc, i, limit) = (Reg::R1, Reg::R2, Reg::R3);
//! asm.li(acc, 0);
//! asm.li(i, 0);
//! asm.li(limit, 10);
//! let top = asm.bind_new_label();
//! asm.add(acc, acc, i);
//! asm.addi(i, i, 1);
//! asm.branch(Cond::Lt, i, limit, top);
//! asm.halt();
//! let program = asm.finish()?;
//! assert!(program.len() > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod decoded;
mod instr;
mod program;

pub use asm::{AsmError, Assembler, Label};
pub use decoded::{DecodedOp, DecodedProgram, LatClass, OpKind, R0_SINK};
pub use instr::{AluOp, Cond, FpuOp, Instr, Reg};
pub use program::{BasicBlock, Program};
