//! A label-based assembler for building [`Program`]s.

use std::error::Error;
use std::fmt;

use crate::instr::{AluOp, Cond, FpuOp, Instr, Reg};
use crate::program::Program;

/// A control-flow label created by [`Assembler::new_label`].
///
/// Labels may be referenced before they are bound; [`Assembler::finish`]
/// resolves all references and reports unbound labels as errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(u32);

/// Errors reported by [`Assembler::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced by an instruction but never bound to an
    /// address.
    UnboundLabel {
        /// The offending label.
        label: Label,
        /// Address of the first instruction referencing it.
        first_use: u32,
    },
    /// The program contains no instructions.
    Empty,
    /// The last instruction can fall through past the end of the program.
    ///
    /// Every program must end in an instruction that cannot fall through
    /// ([`Instr::Halt`], [`Instr::Jump`], or [`Instr::Jr`]), otherwise
    /// execution would run off the end of the instruction array.
    FallsOffEnd,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel { label, first_use } => {
                write!(
                    f,
                    "label {:?} referenced at address {} was never bound",
                    label, first_use
                )
            }
            AsmError::Empty => write!(f, "program contains no instructions"),
            AsmError::FallsOffEnd => {
                write!(f, "program may fall through past its final instruction")
            }
        }
    }
}

impl Error for AsmError {}

/// Builds a [`Program`] instruction by instruction, resolving labels.
///
/// The assembler offers one method per instruction form plus a few
/// conveniences ([`Assembler::nop`], [`Assembler::bind_new_label`]). All
/// emit methods return the address of the emitted instruction so callers can
/// record interesting program points.
///
/// # Example
///
/// ```
/// use pgss_isa::{Assembler, Cond, Reg};
///
/// # fn main() -> Result<(), pgss_isa::AsmError> {
/// let mut asm = Assembler::new();
/// let done = asm.new_label();
/// asm.li(Reg::R1, 5);
/// asm.branch(Cond::Eq, Reg::R1, Reg::R0, done); // forward reference
/// asm.addi(Reg::R1, Reg::R1, -1);
/// asm.bind(done);
/// asm.halt();
/// let program = asm.finish()?;
/// assert_eq!(program.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Assembler {
    instrs: Vec<Instr>,
    /// Bound address per label id.
    bound: Vec<Option<u32>>,
    /// `(instruction address, label)` pairs awaiting resolution.
    fixups: Vec<(u32, Label)>,
}

impl Assembler {
    /// Creates an empty assembler.
    pub fn new() -> Assembler {
        Assembler::default()
    }

    /// Current emission address (the address the next instruction will get).
    #[inline]
    pub fn here(&self) -> u32 {
        self.instrs.len() as u32
    }

    /// Creates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.bound.push(None);
        Label(self.bound.len() as u32 - 1)
    }

    /// Binds `label` to the current address.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound — each label names exactly one
    /// program point.
    pub fn bind(&mut self, label: Label) {
        let here = self.here();
        let slot = &mut self.bound[label.0 as usize];
        assert!(slot.is_none(), "label {label:?} bound twice");
        *slot = Some(here);
    }

    /// Creates a label and binds it to the current address in one step.
    pub fn bind_new_label(&mut self) -> Label {
        let l = self.new_label();
        self.bind(l);
        l
    }

    fn emit(&mut self, i: Instr) -> u32 {
        let pc = self.here();
        self.instrs.push(i);
        pc
    }

    fn emit_labeled(&mut self, i: Instr, label: Label) -> u32 {
        let pc = self.emit(i);
        self.fixups.push((pc, label));
        pc
    }

    /// Emits a three-register ALU instruction.
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs: Reg, rt: Reg) -> u32 {
        self.emit(Instr::Alu { op, rd, rs, rt })
    }

    /// Emits a register-immediate ALU instruction.
    pub fn alui(&mut self, op: AluOp, rd: Reg, rs: Reg, imm: i64) -> u32 {
        self.emit(Instr::AluImm { op, rd, rs, imm })
    }

    /// Emits `add rd, rs, rt`.
    pub fn add(&mut self, rd: Reg, rs: Reg, rt: Reg) -> u32 {
        self.alu(AluOp::Add, rd, rs, rt)
    }

    /// Emits `sub rd, rs, rt`.
    pub fn sub(&mut self, rd: Reg, rs: Reg, rt: Reg) -> u32 {
        self.alu(AluOp::Sub, rd, rs, rt)
    }

    /// Emits `mul rd, rs, rt`.
    pub fn mul(&mut self, rd: Reg, rs: Reg, rt: Reg) -> u32 {
        self.alu(AluOp::Mul, rd, rs, rt)
    }

    /// Emits `xor rd, rs, rt`.
    pub fn xor(&mut self, rd: Reg, rs: Reg, rt: Reg) -> u32 {
        self.alu(AluOp::Xor, rd, rs, rt)
    }

    /// Emits `and rd, rs, rt`.
    pub fn and(&mut self, rd: Reg, rs: Reg, rt: Reg) -> u32 {
        self.alu(AluOp::And, rd, rs, rt)
    }

    /// Emits `addi rd, rs, imm`.
    pub fn addi(&mut self, rd: Reg, rs: Reg, imm: i64) -> u32 {
        self.alui(AluOp::Add, rd, rs, imm)
    }

    /// Emits `andi rd, rs, imm`.
    pub fn andi(&mut self, rd: Reg, rs: Reg, imm: i64) -> u32 {
        self.alui(AluOp::And, rd, rs, imm)
    }

    /// Emits `slli rd, rs, imm` (shift left by an immediate amount).
    pub fn slli(&mut self, rd: Reg, rs: Reg, imm: i64) -> u32 {
        self.alui(AluOp::Sll, rd, rs, imm)
    }

    /// Emits `srli rd, rs, imm` (logical shift right by an immediate).
    pub fn srli(&mut self, rd: Reg, rs: Reg, imm: i64) -> u32 {
        self.alui(AluOp::Srl, rd, rs, imm)
    }

    /// Emits `li rd, imm`.
    pub fn li(&mut self, rd: Reg, imm: i64) -> u32 {
        self.emit(Instr::Li { rd, imm })
    }

    /// Emits `mov rd, rs` (encoded as `add rd, rs, r0`).
    pub fn mov(&mut self, rd: Reg, rs: Reg) -> u32 {
        self.add(rd, rs, Reg::R0)
    }

    /// Emits a no-op (`add r0, r0, r0`).
    pub fn nop(&mut self) -> u32 {
        self.add(Reg::R0, Reg::R0, Reg::R0)
    }

    /// Emits a floating-point operation.
    pub fn fpu(&mut self, op: FpuOp, fd: Reg, fs: Reg, ft: Reg) -> u32 {
        self.emit(Instr::Fpu { op, fd, fs, ft })
    }

    /// Emits an integer load `rd = memory[base + offset]`.
    pub fn load(&mut self, rd: Reg, base: Reg, offset: i64) -> u32 {
        self.emit(Instr::Load { rd, base, offset })
    }

    /// Emits an integer store `memory[base + offset] = rs`.
    pub fn store(&mut self, rs: Reg, base: Reg, offset: i64) -> u32 {
        self.emit(Instr::Store { rs, base, offset })
    }

    /// Emits a floating-point load.
    pub fn fload(&mut self, fd: Reg, base: Reg, offset: i64) -> u32 {
        self.emit(Instr::FLoad { fd, base, offset })
    }

    /// Emits a floating-point store.
    pub fn fstore(&mut self, fs: Reg, base: Reg, offset: i64) -> u32 {
        self.emit(Instr::FStore { fs, base, offset })
    }

    /// Emits a conditional branch to `label`.
    pub fn branch(&mut self, cond: Cond, rs: Reg, rt: Reg, label: Label) -> u32 {
        self.emit_labeled(
            Instr::Branch {
                cond,
                rs,
                rt,
                target: 0,
            },
            label,
        )
    }

    /// Emits an unconditional jump to `label`.
    pub fn jump(&mut self, label: Label) -> u32 {
        self.emit_labeled(Instr::Jump { target: 0 }, label)
    }

    /// Emits a jump-and-link to `label`, writing the return address to
    /// `link`.
    pub fn jal(&mut self, label: Label, link: Reg) -> u32 {
        self.emit_labeled(Instr::Jal { target: 0, link }, label)
    }

    /// Emits `li rd, <address of label>`; resolved at `finish` time. Useful
    /// for building jump tables for [`Assembler::jr`].
    pub fn la(&mut self, rd: Reg, label: Label) -> u32 {
        self.emit_labeled(Instr::Li { rd, imm: 0 }, label)
    }

    /// Emits an indirect jump through `rs`.
    pub fn jr(&mut self, rs: Reg) -> u32 {
        self.emit(Instr::Jr { rs })
    }

    /// Emits `halt`.
    pub fn halt(&mut self) -> u32 {
        self.emit(Instr::Halt)
    }

    /// Resolves all label references and produces the [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UnboundLabel`] if any referenced label was never
    /// bound, [`AsmError::Empty`] for an empty program, and
    /// [`AsmError::FallsOffEnd`] if the final instruction could fall through
    /// past the end of the program.
    pub fn finish(mut self) -> Result<Program, AsmError> {
        if self.instrs.is_empty() {
            return Err(AsmError::Empty);
        }
        // Sort fixups so the *first* use of an unbound label is reported.
        self.fixups.sort_by_key(|&(pc, _)| pc);
        for &(pc, label) in &self.fixups {
            let Some(addr) = self.bound[label.0 as usize] else {
                return Err(AsmError::UnboundLabel {
                    label,
                    first_use: pc,
                });
            };
            match &mut self.instrs[pc as usize] {
                Instr::Branch { target, .. }
                | Instr::Jump { target }
                | Instr::Jal { target, .. } => {
                    *target = addr;
                }
                Instr::Li { imm, .. } => *imm = i64::from(addr),
                other => unreachable!("fixup applied to non-relocatable instruction {other:?}"),
            }
        }
        match self.instrs.last() {
            Some(Instr::Halt) | Some(Instr::Jump { .. }) | Some(Instr::Jr { .. }) => {}
            _ => return Err(AsmError::FallsOffEnd),
        }
        Ok(Program::new(self.instrs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut asm = Assembler::new();
        let fwd = asm.new_label();
        let back = asm.bind_new_label();
        asm.branch(Cond::Eq, Reg::R1, Reg::R0, fwd);
        asm.jump(back);
        asm.bind(fwd);
        asm.halt();
        let p = asm.finish().unwrap();
        assert_eq!(
            p.instr(0),
            Instr::Branch {
                cond: Cond::Eq,
                rs: Reg::R1,
                rt: Reg::R0,
                target: 2
            }
        );
        assert_eq!(p.instr(1), Instr::Jump { target: 0 });
    }

    #[test]
    fn la_materializes_label_address() {
        let mut asm = Assembler::new();
        let target = asm.new_label();
        asm.la(Reg::R5, target);
        asm.jr(Reg::R5);
        asm.bind(target);
        asm.halt();
        let p = asm.finish().unwrap();
        assert_eq!(
            p.instr(0),
            Instr::Li {
                rd: Reg::R5,
                imm: 2
            }
        );
    }

    #[test]
    fn unbound_label_is_error_with_first_use() {
        let mut asm = Assembler::new();
        let l = asm.new_label();
        asm.nop();
        asm.jump(l);
        asm.jump(l);
        match asm.finish() {
            Err(AsmError::UnboundLabel { first_use, .. }) => assert_eq!(first_use, 1),
            other => panic!("expected UnboundLabel, got {other:?}"),
        }
    }

    #[test]
    fn empty_program_is_error() {
        assert_eq!(Assembler::new().finish().unwrap_err(), AsmError::Empty);
    }

    #[test]
    fn fall_through_end_is_error() {
        let mut asm = Assembler::new();
        asm.nop();
        assert_eq!(asm.finish().unwrap_err(), AsmError::FallsOffEnd);

        let mut asm = Assembler::new();
        let l = asm.bind_new_label();
        asm.branch(Cond::Eq, Reg::R0, Reg::R0, l); // conditional: may fall through
        assert_eq!(asm.finish().unwrap_err(), AsmError::FallsOffEnd);
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut asm = Assembler::new();
        let l = asm.bind_new_label();
        asm.bind(l);
    }

    #[test]
    fn emit_methods_return_addresses() {
        let mut asm = Assembler::new();
        assert_eq!(asm.li(Reg::R1, 1), 0);
        assert_eq!(asm.nop(), 1);
        assert_eq!(asm.halt(), 2);
        assert_eq!(asm.here(), 3);
        let p = asm.finish().unwrap();
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn error_display_is_informative() {
        let e = AsmError::UnboundLabel {
            label: Label(3),
            first_use: 7,
        };
        let s = e.to_string();
        assert!(s.contains('7'), "{s}");
        assert!(!AsmError::Empty.to_string().is_empty());
        assert!(!AsmError::FallsOffEnd.to_string().is_empty());
    }
}
