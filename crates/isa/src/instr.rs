//! Instruction and register definitions.

use std::fmt;

/// An architectural register name.
///
/// The machine has 32 integer registers and 32 floating-point registers.
/// `Reg` names one slot in either file; which file is addressed is implied by
/// the instruction ([`Instr::Fpu`] and the floating-point memory instructions
/// address the floating-point file, everything else the integer file).
///
/// Integer register [`Reg::R0`] is hardwired to zero: reads return `0` and
/// writes are discarded, as in MIPS/RISC-V.
///
/// # Example
///
/// ```
/// use pgss_isa::Reg;
///
/// let r = Reg::R7;
/// assert_eq!(r.index(), 7);
/// assert_eq!(Reg::from_index(7), Some(Reg::R7));
/// assert_eq!(Reg::from_index(32), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)] // the 32 variants are self-describing
#[rustfmt::skip]
pub enum Reg {
    R0, R1, R2, R3, R4, R5, R6, R7,
    R8, R9, R10, R11, R12, R13, R14, R15,
    R16, R17, R18, R19, R20, R21, R22, R23,
    R24, R25, R26, R27, R28, R29, R30, R31,
}

impl Reg {
    /// Number of registers in each register file.
    pub const COUNT: usize = 32;

    /// The conventional link register written by [`Instr::Jal`]
    /// (by convention only; any register may be used).
    pub const LINK: Reg = Reg::R31;

    /// Returns the register's index in its file, in `0..32`.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Returns the register with the given index, or `None` if `index >= 32`.
    pub fn from_index(index: usize) -> Option<Reg> {
        Self::ALL.get(index).copied()
    }

    /// All 32 registers in index order.
    #[rustfmt::skip]
    pub const ALL: [Reg; 32] = [
        Reg::R0, Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6, Reg::R7,
        Reg::R8, Reg::R9, Reg::R10, Reg::R11, Reg::R12, Reg::R13, Reg::R14, Reg::R15,
        Reg::R16, Reg::R17, Reg::R18, Reg::R19, Reg::R20, Reg::R21, Reg::R22, Reg::R23,
        Reg::R24, Reg::R25, Reg::R26, Reg::R27, Reg::R28, Reg::R29, Reg::R30, Reg::R31,
    ];
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.index())
    }
}

/// Integer ALU operation selectors for [`Instr::Alu`] and [`Instr::AluImm`].
///
/// Division and remainder by zero produce `0` rather than trapping (the
/// machine has no exception model), and all arithmetic wraps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication (longer latency than [`AluOp::Add`]).
    Mul,
    /// Wrapping signed division; division by zero yields `0`.
    Div,
    /// Signed remainder; remainder by zero yields `0`.
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (shift amount taken modulo 64).
    Sll,
    /// Logical shift right (shift amount taken modulo 64).
    Srl,
    /// Arithmetic shift right (shift amount taken modulo 64).
    Sra,
    /// Set-if-less-than (signed): destination is `1` or `0`.
    Slt,
}

impl AluOp {
    /// Applies the operation to two operand values.
    ///
    /// ```
    /// use pgss_isa::AluOp;
    ///
    /// assert_eq!(AluOp::Add.apply(2, 3), 5);
    /// assert_eq!(AluOp::Div.apply(7, 0), 0); // division by zero yields 0
    /// assert_eq!(AluOp::Slt.apply(-1, 0), 1);
    /// ```
    #[inline]
    pub fn apply(self, a: i64, b: i64) -> i64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            AluOp::Rem => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => ((a as u64) << (b as u64 & 63)) as i64,
            AluOp::Srl => ((a as u64) >> (b as u64 & 63)) as i64,
            AluOp::Sra => a >> (b as u64 & 63),
            AluOp::Slt => i64::from(a < b),
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Slt => "slt",
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Floating-point operation selectors for [`Instr::Fpu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpuOp {
    /// IEEE-754 addition.
    Add,
    /// IEEE-754 subtraction.
    Sub,
    /// IEEE-754 multiplication.
    Mul,
    /// IEEE-754 division.
    Div,
}

impl FpuOp {
    /// Applies the operation to two operand values.
    #[inline]
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            FpuOp::Add => a + b,
            FpuOp::Sub => a - b,
            FpuOp::Mul => a * b,
            FpuOp::Div => a / b,
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            FpuOp::Add => "fadd",
            FpuOp::Sub => "fsub",
            FpuOp::Mul => "fmul",
            FpuOp::Div => "fdiv",
        }
    }
}

impl fmt::Display for FpuOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Branch condition selectors for [`Instr::Branch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Taken when `rs == rt`.
    Eq,
    /// Taken when `rs != rt`.
    Ne,
    /// Taken when `rs < rt` (signed).
    Lt,
    /// Taken when `rs >= rt` (signed).
    Ge,
}

impl Cond {
    /// Evaluates the condition on two operand values.
    ///
    /// ```
    /// use pgss_isa::Cond;
    ///
    /// assert!(Cond::Lt.eval(-5, 3));
    /// assert!(!Cond::Eq.eval(1, 2));
    /// ```
    #[inline]
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Ge => a >= b,
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "beq",
            Cond::Ne => "bne",
            Cond::Lt => "blt",
            Cond::Ge => "bge",
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// One machine instruction.
///
/// Memory operands address a flat array of 64-bit words: the effective word
/// address of a load or store is `base_register + offset`. The simulator in
/// `pgss-cpu` converts word addresses to byte addresses (`× 8`) for cache
/// indexing.
///
/// Control transfers name absolute instruction addresses (`u32` indices into
/// the program's instruction array). The [`crate::Assembler`] produces these
/// from labels so programs never hand-compute targets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr {
    /// `rd = op(rs, rt)` on the integer file.
    Alu {
        /// Operation selector.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs: Reg,
        /// Second source register.
        rt: Reg,
    },
    /// `rd = op(rs, imm)` on the integer file.
    AluImm {
        /// Operation selector.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs: Reg,
        /// Immediate operand.
        imm: i64,
    },
    /// `rd = imm`: load a 64-bit immediate.
    Li {
        /// Destination register.
        rd: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// `fd = op(fs, ft)` on the floating-point file.
    Fpu {
        /// Operation selector.
        op: FpuOp,
        /// Destination register (floating-point file).
        fd: Reg,
        /// First source register (floating-point file).
        fs: Reg,
        /// Second source register (floating-point file).
        ft: Reg,
    },
    /// `rd = memory[base + offset]` (integer load).
    Load {
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Word offset added to the base register.
        offset: i64,
    },
    /// `memory[base + offset] = rs` (integer store).
    Store {
        /// Source register providing the stored value.
        rs: Reg,
        /// Base address register.
        base: Reg,
        /// Word offset added to the base register.
        offset: i64,
    },
    /// `fd = memory[base + offset]` reinterpreted as an `f64`.
    FLoad {
        /// Destination register (floating-point file).
        fd: Reg,
        /// Base address register (integer file).
        base: Reg,
        /// Word offset added to the base register.
        offset: i64,
    },
    /// `memory[base + offset] = fs` (bit pattern of the `f64`).
    FStore {
        /// Source register (floating-point file).
        fs: Reg,
        /// Base address register (integer file).
        base: Reg,
        /// Word offset added to the base register.
        offset: i64,
    },
    /// Conditional branch to an absolute target.
    Branch {
        /// Condition selector.
        cond: Cond,
        /// First compared register.
        rs: Reg,
        /// Second compared register.
        rt: Reg,
        /// Absolute target instruction address.
        target: u32,
    },
    /// Unconditional jump to an absolute target.
    Jump {
        /// Absolute target instruction address.
        target: u32,
    },
    /// Jump-and-link: `link = pc + 1; pc = target`.
    Jal {
        /// Absolute target instruction address.
        target: u32,
        /// Register receiving the return address.
        link: Reg,
    },
    /// Indirect jump to the address held in `rs` (used for returns and
    /// computed dispatch).
    Jr {
        /// Register holding the target instruction address.
        rs: Reg,
    },
    /// Stop execution; the program is complete.
    Halt,
}

impl Instr {
    /// Returns `true` for instructions that may redirect control flow
    /// (branches, jumps, and [`Instr::Halt`]).
    ///
    /// ```
    /// use pgss_isa::{Instr, Reg};
    ///
    /// assert!(Instr::Jump { target: 0 }.is_control_flow());
    /// assert!(!Instr::Li { rd: Reg::R1, imm: 4 }.is_control_flow());
    /// ```
    #[inline]
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Instr::Branch { .. }
                | Instr::Jump { .. }
                | Instr::Jal { .. }
                | Instr::Jr { .. }
                | Instr::Halt
        )
    }

    /// Returns the statically-known control-flow target, if any.
    ///
    /// Indirect jumps ([`Instr::Jr`]) and non-control instructions return
    /// `None`.
    #[inline]
    pub fn static_target(&self) -> Option<u32> {
        match self {
            Instr::Branch { target, .. } | Instr::Jump { target } | Instr::Jal { target, .. } => {
                Some(*target)
            }
            _ => None,
        }
    }

    /// Returns `true` if the instruction accesses data memory.
    #[inline]
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Instr::Load { .. } | Instr::Store { .. } | Instr::FLoad { .. } | Instr::FStore { .. }
        )
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Alu { op, rd, rs, rt } => write!(f, "{op} {rd}, {rs}, {rt}"),
            Instr::AluImm { op, rd, rs, imm } => write!(f, "{op}i {rd}, {rs}, {imm}"),
            Instr::Li { rd, imm } => write!(f, "li {rd}, {imm}"),
            Instr::Fpu { op, fd, fs, ft } => {
                write!(f, "{op} f{}, f{}, f{}", fd.index(), fs.index(), ft.index())
            }
            Instr::Load { rd, base, offset } => write!(f, "ld {rd}, {offset}({base})"),
            Instr::Store { rs, base, offset } => write!(f, "st {rs}, {offset}({base})"),
            Instr::FLoad { fd, base, offset } => write!(f, "fld f{}, {offset}({base})", fd.index()),
            Instr::FStore { fs, base, offset } => {
                write!(f, "fst f{}, {offset}({base})", fs.index())
            }
            Instr::Branch {
                cond,
                rs,
                rt,
                target,
            } => write!(f, "{cond} {rs}, {rt}, @{target}"),
            Instr::Jump { target } => write!(f, "j @{target}"),
            Instr::Jal { target, link } => write!(f, "jal {link}, @{target}"),
            Instr::Jr { rs } => write!(f, "jr {rs}"),
            Instr::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_index_roundtrip() {
        for (i, r) in Reg::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Reg::from_index(i), Some(*r));
        }
        assert_eq!(Reg::from_index(32), None);
        assert_eq!(Reg::from_index(usize::MAX), None);
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(i64::MAX, 1), i64::MIN); // wrapping
        assert_eq!(AluOp::Sub.apply(3, 5), -2);
        assert_eq!(AluOp::Mul.apply(6, 7), 42);
        assert_eq!(AluOp::Div.apply(7, 2), 3);
        assert_eq!(AluOp::Div.apply(7, 0), 0);
        assert_eq!(AluOp::Rem.apply(7, 3), 1);
        assert_eq!(AluOp::Rem.apply(7, 0), 0);
        assert_eq!(AluOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.apply(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Sll.apply(1, 4), 16);
        assert_eq!(AluOp::Srl.apply(-1, 63), 1);
        assert_eq!(AluOp::Sra.apply(-8, 2), -2);
        assert_eq!(AluOp::Slt.apply(1, 2), 1);
        assert_eq!(AluOp::Slt.apply(2, 1), 0);
    }

    #[test]
    fn shift_amount_wraps_at_64() {
        assert_eq!(AluOp::Sll.apply(1, 64), 1);
        assert_eq!(AluOp::Sll.apply(1, 65), 2);
    }

    #[test]
    fn div_min_by_minus_one_wraps() {
        assert_eq!(AluOp::Div.apply(i64::MIN, -1), i64::MIN);
        assert_eq!(AluOp::Rem.apply(i64::MIN, -1), 0);
    }

    #[test]
    fn cond_semantics() {
        assert!(Cond::Eq.eval(4, 4));
        assert!(Cond::Ne.eval(4, 5));
        assert!(Cond::Lt.eval(-1, 0));
        assert!(Cond::Ge.eval(0, 0));
        assert!(!Cond::Lt.eval(0, -1));
    }

    #[test]
    fn fpu_semantics() {
        assert_eq!(FpuOp::Add.apply(1.5, 2.5), 4.0);
        assert_eq!(FpuOp::Mul.apply(3.0, 2.0), 6.0);
        assert!(FpuOp::Div.apply(1.0, 0.0).is_infinite());
    }

    #[test]
    fn control_flow_classification() {
        let b = Instr::Branch {
            cond: Cond::Eq,
            rs: Reg::R1,
            rt: Reg::R2,
            target: 7,
        };
        assert!(b.is_control_flow());
        assert_eq!(b.static_target(), Some(7));
        assert_eq!(Instr::Jr { rs: Reg::R31 }.static_target(), None);
        assert!(Instr::Halt.is_control_flow());
        assert!(Instr::Load {
            rd: Reg::R1,
            base: Reg::R2,
            offset: 0
        }
        .is_memory());
        assert!(!Instr::Halt.is_memory());
    }

    #[test]
    fn display_is_nonempty_and_stable() {
        let cases = [
            Instr::Alu {
                op: AluOp::Add,
                rd: Reg::R1,
                rs: Reg::R2,
                rt: Reg::R3,
            },
            Instr::AluImm {
                op: AluOp::Xor,
                rd: Reg::R1,
                rs: Reg::R2,
                imm: -9,
            },
            Instr::Li {
                rd: Reg::R4,
                imm: 123,
            },
            Instr::Fpu {
                op: FpuOp::Mul,
                fd: Reg::R0,
                fs: Reg::R1,
                ft: Reg::R2,
            },
            Instr::Load {
                rd: Reg::R5,
                base: Reg::R6,
                offset: 8,
            },
            Instr::Store {
                rs: Reg::R5,
                base: Reg::R6,
                offset: -8,
            },
            Instr::FLoad {
                fd: Reg::R2,
                base: Reg::R6,
                offset: 1,
            },
            Instr::FStore {
                fs: Reg::R2,
                base: Reg::R6,
                offset: 1,
            },
            Instr::Branch {
                cond: Cond::Ne,
                rs: Reg::R1,
                rt: Reg::R0,
                target: 42,
            },
            Instr::Jump { target: 3 },
            Instr::Jal {
                target: 3,
                link: Reg::LINK,
            },
            Instr::Jr { rs: Reg::LINK },
            Instr::Halt,
        ];
        for instr in cases {
            assert!(!instr.to_string().is_empty());
        }
        assert_eq!(cases[0].to_string(), "add r1, r2, r3");
        assert_eq!(cases[8].to_string(), "bne r1, r0, @42");
    }
}
