//! Pre-decoded micro-op IR: a flat, cache-friendly lowering of a
//! [`Program`] for fast interpretation.
//!
//! [`Program`] stores [`Instr`]s — a nested enum that is convenient to
//! assemble and disassemble but expensive to dispatch on every retired
//! op: each execution re-extracts register operands, re-classifies the
//! latency class, and re-discovers where straight-line runs end. The
//! [`DecodedProgram`] produced by [`DecodedProgram::decode`] pays all of
//! that once, at load time:
//!
//! - every instruction becomes one fixed-size [`DecodedOp`] with
//!   pre-resolved register *indices* (not enum variants), its operator
//!   selectors, its static branch-target slot, and its [`LatClass`];
//! - `run_len[pc]` records, for every address, how many straight-line
//!   (non-control-flow) ops start there — the superblock length a
//!   dispatch loop can execute without re-checking for control flow.
//!
//! Decoding is semantically lossless and configuration-independent: the
//! decoded form is *derived* state, cheap to rebuild from the `Program`,
//! and is therefore never serialized into snapshots or checkpoints.

use crate::instr::{AluOp, Cond, FpuOp, Instr};
use crate::program::Program;

/// Fully-resolved operation of a [`DecodedOp`] — the *single* dispatch
/// discriminant an interpreter matches on.
///
/// Where [`Instr`] needs two dispatches per op (the instruction kind,
/// then the operator selector inside [`AluOp::apply`] / [`Cond::eval`] /
/// [`FpuOp::apply`]), the decoder folds both levels into one opcode, so
/// the hot loop executes exactly one indirect branch per op. Variants
/// ending in `I` take the second operand from [`DecodedOp::imm`].
#[repr(u8)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    // Register-register integer ALU ops (semantics of [`AluOp::apply`]).
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Wrapping signed division; division by zero yields `0`.
    Div,
    /// Signed remainder; remainder by zero yields `0`.
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (shift amount modulo 64).
    Sll,
    /// Logical shift right (shift amount modulo 64).
    Srl,
    /// Arithmetic shift right (shift amount modulo 64).
    Sra,
    /// Set-if-less-than (signed).
    Slt,
    // Register-immediate forms of the same twelve operators.
    /// `Add` with an immediate second operand.
    AddI,
    /// `Sub` with an immediate second operand.
    SubI,
    /// `Mul` with an immediate second operand.
    MulI,
    /// `Div` with an immediate second operand.
    DivI,
    /// `Rem` with an immediate second operand.
    RemI,
    /// `And` with an immediate second operand.
    AndI,
    /// `Or` with an immediate second operand.
    OrI,
    /// `Xor` with an immediate second operand.
    XorI,
    /// `Sll` with an immediate second operand.
    SllI,
    /// `Srl` with an immediate second operand.
    SrlI,
    /// `Sra` with an immediate second operand.
    SraI,
    /// `Slt` with an immediate second operand.
    SltI,
    /// Load immediate into an integer register.
    Li,
    // Floating-point ops (semantics of [`FpuOp::apply`]).
    /// IEEE-754 addition.
    FAdd,
    /// IEEE-754 subtraction.
    FSub,
    /// IEEE-754 multiplication.
    FMul,
    /// IEEE-754 division.
    FDiv,
    /// Integer load: `a <- mem[b + imm]`.
    Load,
    /// Integer store: `mem[b + imm] <- c`.
    Store,
    /// Floating-point load: `f[a] <- mem[b + imm]`.
    FLoad,
    /// Floating-point store: `mem[b + imm] <- f[c]`.
    FStore,
    // Conditional branches (semantics of [`Cond::eval`]), destination in
    // [`DecodedOp::target`].
    /// Taken when `b == c`.
    BranchEq,
    /// Taken when `b != c`.
    BranchNe,
    /// Taken when `b < c` (signed).
    BranchLt,
    /// Taken when `b >= c` (signed).
    BranchGe,
    /// Unconditional jump to [`DecodedOp::target`].
    Jump,
    /// Jump-and-link: writes `pc + 1` to register `a` (link slot, see
    /// [`DecodedOp::a`]), jumps to [`DecodedOp::target`].
    Jal,
    /// Indirect jump to the address in register `b`.
    Jr,
    /// Stops execution.
    Halt,
}

/// Static latency class of a [`DecodedOp`], pre-resolved at decode time.
///
/// The class is configuration-independent; an executing core maps each
/// class to cycles from its own latency configuration (see
/// [`LatClass::COUNT`] for building a lookup table indexed by
/// [`LatClass::index`]). Memory ops carry [`LatClass::Alu`] — their
/// latency comes from the cache hierarchy, not this table.
#[repr(u8)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LatClass {
    /// Single-cycle-class integer op (also the placeholder class).
    Alu = 0,
    /// Integer multiply.
    Mul = 1,
    /// Integer divide / remainder.
    Div = 2,
    /// Floating-point add / subtract.
    FpAdd = 3,
    /// Floating-point multiply.
    FpMul = 4,
    /// Floating-point divide.
    FpDiv = 5,
}

impl LatClass {
    /// Number of latency classes, for sizing class→cycles lookup tables.
    pub const COUNT: usize = 6;

    /// This class's index into a class→cycles lookup table.
    #[inline(always)]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Destination slot that integer writes to the hardwired-zero `r0` are
/// redirected to at decode time.
///
/// An executing core sized for `R0_SINK + 1` (or more) integer register
/// slots can then write every integer destination unconditionally — the
/// architectural `r0` (slot 0) is never written, and the sink slot is
/// scratch that is never read. Source register fields are never remapped.
pub const R0_SINK: u8 = 32;

/// One pre-decoded micro-op: a fixed-size, [`Copy`] record with every
/// operand pre-resolved so an interpreter's hot loop does no further
/// field extraction.
///
/// Register fields `a`/`b`/`c` hold *indices* (the file — integer or
/// floating-point — is implied by [`DecodedOp::kind`]): `a` is the
/// destination (or `Jal` link register), `b` the first source or address
/// base, `c` the second source or stored value. Sources are always
/// `< 32`; integer destinations are `1..=32`, with writes to the
/// hardwired-zero `r0` pre-redirected to the [`R0_SINK`] scratch slot.
/// Fields not used by a kind are zero.
///
/// Control-flow ops overlay their static target on the immediate slot
/// (read it via [`DecodedOp::target`]) to keep the record at 16 bytes —
/// four ops per 64-byte line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodedOp {
    /// Fully-resolved dispatch discriminant.
    pub kind: OpKind,
    /// Destination register slot (integer dests: `1..=32`, `r0` writes
    /// pre-redirected to [`R0_SINK`]), or the `Jal` link slot.
    pub a: u8,
    /// First source / address-base register index.
    pub b: u8,
    /// Second source / stored-value register index.
    pub c: u8,
    /// Pre-resolved latency class.
    pub lat: LatClass,
    /// Immediate operand / memory word offset; for conditional branches,
    /// [`OpKind::Jump`] and [`OpKind::Jal`] this slot holds the static
    /// branch target instead (see [`DecodedOp::target`]).
    pub imm: i64,
}

impl DecodedOp {
    fn new(kind: OpKind) -> DecodedOp {
        DecodedOp {
            kind,
            a: 0,
            b: 0,
            c: 0,
            lat: LatClass::Alu,
            imm: 0,
        }
    }

    /// Static branch/jump target (valid for the conditional branches,
    /// [`OpKind::Jump`], [`OpKind::Jal`]), overlaid on the immediate slot.
    #[inline(always)]
    pub fn target(&self) -> u32 {
        self.imm as u32
    }
}

/// Redirects an integer *destination* register to its decoded slot:
/// `r0` writes go to the [`R0_SINK`] scratch slot, everything else keeps
/// its architectural index.
#[inline]
fn dst(index: usize) -> u8 {
    if index == 0 {
        R0_SINK
    } else {
        index as u8
    }
}

#[inline]
fn alu_class(op: AluOp) -> LatClass {
    match op {
        AluOp::Mul => LatClass::Mul,
        AluOp::Div | AluOp::Rem => LatClass::Div,
        _ => LatClass::Alu,
    }
}

#[inline]
fn fpu_class(op: FpuOp) -> LatClass {
    match op {
        FpuOp::Add | FpuOp::Sub => LatClass::FpAdd,
        FpuOp::Mul => LatClass::FpMul,
        FpuOp::Div => LatClass::FpDiv,
    }
}

/// The register-register opcode for an integer operator.
fn alu_kind(op: AluOp) -> OpKind {
    match op {
        AluOp::Add => OpKind::Add,
        AluOp::Sub => OpKind::Sub,
        AluOp::Mul => OpKind::Mul,
        AluOp::Div => OpKind::Div,
        AluOp::Rem => OpKind::Rem,
        AluOp::And => OpKind::And,
        AluOp::Or => OpKind::Or,
        AluOp::Xor => OpKind::Xor,
        AluOp::Sll => OpKind::Sll,
        AluOp::Srl => OpKind::Srl,
        AluOp::Sra => OpKind::Sra,
        AluOp::Slt => OpKind::Slt,
    }
}

/// The register-immediate opcode for an integer operator.
fn alu_imm_kind(op: AluOp) -> OpKind {
    match op {
        AluOp::Add => OpKind::AddI,
        AluOp::Sub => OpKind::SubI,
        AluOp::Mul => OpKind::MulI,
        AluOp::Div => OpKind::DivI,
        AluOp::Rem => OpKind::RemI,
        AluOp::And => OpKind::AndI,
        AluOp::Or => OpKind::OrI,
        AluOp::Xor => OpKind::XorI,
        AluOp::Sll => OpKind::SllI,
        AluOp::Srl => OpKind::SrlI,
        AluOp::Sra => OpKind::SraI,
        AluOp::Slt => OpKind::SltI,
    }
}

fn lower(instr: Instr) -> DecodedOp {
    match instr {
        Instr::Alu { op, rd, rs, rt } => {
            let mut d = DecodedOp::new(alu_kind(op));
            d.lat = alu_class(op);
            d.a = dst(rd.index());
            d.b = rs.index() as u8;
            d.c = rt.index() as u8;
            d
        }
        Instr::AluImm { op, rd, rs, imm } => {
            let mut d = DecodedOp::new(alu_imm_kind(op));
            d.lat = alu_class(op);
            d.a = dst(rd.index());
            d.b = rs.index() as u8;
            d.imm = imm;
            d
        }
        Instr::Li { rd, imm } => {
            let mut d = DecodedOp::new(OpKind::Li);
            d.a = dst(rd.index());
            d.imm = imm;
            d
        }
        Instr::Fpu { op, fd, fs, ft } => {
            let mut d = DecodedOp::new(match op {
                FpuOp::Add => OpKind::FAdd,
                FpuOp::Sub => OpKind::FSub,
                FpuOp::Mul => OpKind::FMul,
                FpuOp::Div => OpKind::FDiv,
            });
            d.lat = fpu_class(op);
            d.a = fd.index() as u8;
            d.b = fs.index() as u8;
            d.c = ft.index() as u8;
            d
        }
        Instr::Load { rd, base, offset } => {
            let mut d = DecodedOp::new(OpKind::Load);
            d.a = dst(rd.index());
            d.b = base.index() as u8;
            d.imm = offset;
            d
        }
        Instr::Store { rs, base, offset } => {
            let mut d = DecodedOp::new(OpKind::Store);
            d.c = rs.index() as u8;
            d.b = base.index() as u8;
            d.imm = offset;
            d
        }
        Instr::FLoad { fd, base, offset } => {
            let mut d = DecodedOp::new(OpKind::FLoad);
            d.a = fd.index() as u8;
            d.b = base.index() as u8;
            d.imm = offset;
            d
        }
        Instr::FStore { fs, base, offset } => {
            let mut d = DecodedOp::new(OpKind::FStore);
            d.c = fs.index() as u8;
            d.b = base.index() as u8;
            d.imm = offset;
            d
        }
        Instr::Branch {
            cond,
            rs,
            rt,
            target,
        } => {
            let mut d = DecodedOp::new(match cond {
                Cond::Eq => OpKind::BranchEq,
                Cond::Ne => OpKind::BranchNe,
                Cond::Lt => OpKind::BranchLt,
                Cond::Ge => OpKind::BranchGe,
            });
            d.b = rs.index() as u8;
            d.c = rt.index() as u8;
            d.imm = i64::from(target);
            d
        }
        Instr::Jump { target } => {
            let mut d = DecodedOp::new(OpKind::Jump);
            d.imm = i64::from(target);
            d
        }
        Instr::Jal { target, link } => {
            let mut d = DecodedOp::new(OpKind::Jal);
            d.a = dst(link.index());
            d.imm = i64::from(target);
            d
        }
        Instr::Jr { rs } => {
            let mut d = DecodedOp::new(OpKind::Jr);
            d.b = rs.index() as u8;
            d
        }
        Instr::Halt => DecodedOp::new(OpKind::Halt),
    }
}

/// A one-shot, lossless lowering of a [`Program`] into a flat
/// [`DecodedOp`] array plus superblock metadata.
///
/// Decoded state is derived: rebuild it from the `Program` wherever a
/// core is constructed; never serialize it.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedProgram {
    ops: Box<[DecodedOp]>,
    /// `run_len[pc]` = number of consecutive non-control-flow ops
    /// starting at `pc` (0 when `pc` holds a control-flow op).
    run_len: Box<[u32]>,
}

impl DecodedProgram {
    /// Lowers `program` into its decoded form.
    ///
    /// All static targets were validated by [`Program::new`], so decoded
    /// `target` slots are always in range; only indirect (`Jr`) targets
    /// need a runtime check.
    pub fn decode(program: &Program) -> DecodedProgram {
        let instrs = program.instrs();
        let ops: Box<[DecodedOp]> = instrs.iter().map(|&i| lower(i)).collect();
        // Straight-line run lengths, computed back-to-front: a control
        // op ends a run; anything else extends the successor's run.
        let mut run_len = vec![0u32; instrs.len()].into_boxed_slice();
        for pc in (0..instrs.len()).rev() {
            if !instrs[pc].is_control_flow() {
                run_len[pc] = if pc + 1 < instrs.len() {
                    run_len[pc + 1] + 1
                } else {
                    1
                };
            }
        }
        DecodedProgram { ops, run_len }
    }

    /// Number of decoded ops (equals the source program's length).
    #[inline]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the program has no ops (never true for a decoded
    /// [`Program`]; present for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The flat decoded-op array.
    #[inline]
    pub fn ops(&self) -> &[DecodedOp] {
        &self.ops
    }

    /// Number of straight-line (non-control-flow) ops starting at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    #[inline]
    pub fn run_len(&self, pc: u32) -> u32 {
        self.run_len[pc as usize]
    }

    /// The full `run_len` array (`run_len[pc]` per address).
    #[inline]
    pub fn run_lens(&self) -> &[u32] {
        &self.run_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Reg;

    fn nop() -> Instr {
        Instr::Alu {
            op: AluOp::Add,
            rd: Reg::R0,
            rs: Reg::R0,
            rt: Reg::R0,
        }
    }

    #[test]
    fn run_lengths_count_to_next_control_op() {
        // 0: nop  1: nop  2: jump->0  3: nop  4: halt
        let p = Program::new(vec![
            nop(),
            nop(),
            Instr::Jump { target: 0 },
            nop(),
            Instr::Halt,
        ]);
        let d = DecodedProgram::decode(&p);
        assert_eq!(d.run_lens(), &[2, 1, 0, 1, 0]);
        assert_eq!(d.run_len(0), 2);
        assert_eq!(d.len(), p.len());
        assert!(!d.is_empty());
    }

    #[test]
    fn trailing_straight_line_op_has_run_one() {
        // A program whose last instruction is not control flow: the run
        // must stop at the program end, not read past it.
        let p = Program::new(vec![Instr::Halt, nop(), nop()]);
        let d = DecodedProgram::decode(&p);
        assert_eq!(d.run_lens(), &[0, 2, 1]);
    }

    #[test]
    fn operands_are_pre_resolved() {
        let p = Program::new(vec![
            Instr::Alu {
                op: AluOp::Mul,
                rd: Reg::R3,
                rs: Reg::R7,
                rt: Reg::R31,
            },
            Instr::Store {
                rs: Reg::R5,
                base: Reg::R6,
                offset: -8,
            },
            Instr::Branch {
                cond: Cond::Lt,
                rs: Reg::R1,
                rt: Reg::R2,
                target: 0,
            },
            Instr::Jal {
                target: 4,
                link: Reg::R31,
            },
            Instr::Halt,
        ]);
        let d = DecodedProgram::decode(&p);
        let mul = d.ops()[0];
        assert_eq!(mul.kind, OpKind::Mul);
        assert_eq!(mul.lat, LatClass::Mul);
        assert_eq!((mul.a, mul.b, mul.c), (3, 7, 31));
        let st = d.ops()[1];
        assert_eq!(st.kind, OpKind::Store);
        assert_eq!((st.b, st.c, st.imm), (6, 5, -8));
        let br = d.ops()[2];
        assert_eq!(br.kind, OpKind::BranchLt);
        assert_eq!((br.b, br.c, br.target()), (1, 2, 0));
        let jal = d.ops()[3];
        assert_eq!(jal.kind, OpKind::Jal);
        assert_eq!((jal.a, jal.target()), (31, 4));
    }

    #[test]
    fn operator_selectors_fold_into_the_opcode() {
        // One dispatch level: the operator and the imm-vs-register form
        // are both resolved in the opcode itself.
        let p = Program::new(vec![
            Instr::Alu {
                op: AluOp::Xor,
                rd: Reg::R1,
                rs: Reg::R2,
                rt: Reg::R3,
            },
            Instr::AluImm {
                op: AluOp::Xor,
                rd: Reg::R1,
                rs: Reg::R2,
                imm: 5,
            },
            Instr::Fpu {
                op: FpuOp::Div,
                fd: Reg::R1,
                fs: Reg::R2,
                ft: Reg::R3,
            },
            Instr::Branch {
                cond: Cond::Ge,
                rs: Reg::R1,
                rt: Reg::R2,
                target: 0,
            },
            Instr::Halt,
        ]);
        let d = DecodedProgram::decode(&p);
        assert_eq!(d.ops()[0].kind, OpKind::Xor);
        assert_eq!(d.ops()[1].kind, OpKind::XorI);
        assert_eq!(d.ops()[2].kind, OpKind::FDiv);
        assert_eq!(d.ops()[2].lat, LatClass::FpDiv);
        assert_eq!(d.ops()[3].kind, OpKind::BranchGe);
    }

    #[test]
    fn r0_destinations_are_redirected_to_the_sink_slot() {
        let p = Program::new(vec![
            nop(), // rd = r0
            Instr::Li {
                rd: Reg::R1,
                imm: 7,
            },
            Instr::Halt,
        ]);
        let d = DecodedProgram::decode(&p);
        assert_eq!(d.ops()[0].a, R0_SINK);
        // Sources keep their architectural index.
        assert_eq!((d.ops()[0].b, d.ops()[0].c), (0, 0));
        assert_eq!(d.ops()[1].a, 1);
    }

    #[test]
    fn latency_classes_cover_every_operator() {
        assert_eq!(alu_class(AluOp::Mul), LatClass::Mul);
        assert_eq!(alu_class(AluOp::Div), LatClass::Div);
        assert_eq!(alu_class(AluOp::Rem), LatClass::Div);
        assert_eq!(alu_class(AluOp::Xor), LatClass::Alu);
        assert_eq!(fpu_class(FpuOp::Sub), LatClass::FpAdd);
        assert_eq!(fpu_class(FpuOp::Mul), LatClass::FpMul);
        assert_eq!(fpu_class(FpuOp::Div), LatClass::FpDiv);
        assert!(LatClass::FpDiv.index() < LatClass::COUNT);
    }

    #[test]
    fn decoded_op_is_compact() {
        // The hot array must stay cache-friendly; 16 bytes = 4 ops per
        // 64-byte line (targets overlay the immediate slot to get here).
        // Regressing this is a deliberate decision.
        assert!(std::mem::size_of::<DecodedOp>() <= 16);
    }
}
