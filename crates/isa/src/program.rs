//! Assembled programs and their static basic-block structure.

use std::fmt;

use crate::instr::Instr;

/// A static basic block: a maximal straight-line instruction range.
///
/// Blocks are derived from a [`Program`]'s instruction array by the classic
/// leader algorithm: the entry point, every statically-known control-flow
/// target, and every instruction following a control-flow instruction start a
/// block. Full basic-block vectors (SimPoint-style) count executions per
/// block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BasicBlock {
    /// Address of the block's first instruction.
    pub start: u32,
    /// Address one past the block's last instruction.
    pub end: u32,
}

impl BasicBlock {
    /// Number of instructions in the block.
    #[inline]
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// Returns `true` if the block contains no instructions.
    ///
    /// Blocks produced by [`Program::new`] are never empty; this exists for
    /// completeness of the container-like API.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// An immutable, assembled program: instructions plus derived basic-block
/// metadata.
///
/// Construct programs with the [`crate::Assembler`]; [`Program::new`] is
/// public for handcrafted tests.
///
/// # Example
///
/// ```
/// use pgss_isa::{Instr, Program, Reg};
///
/// let program = Program::new(vec![
///     Instr::Li { rd: Reg::R1, imm: 1 },
///     Instr::Jump { target: 3 },
///     Instr::Li { rd: Reg::R2, imm: 2 }, // unreachable, still a block
///     Instr::Halt,
/// ]);
/// assert_eq!(program.len(), 4);
/// assert_eq!(program.num_blocks(), 3);
/// assert_eq!(program.block_of(0), program.block_of(1));
/// assert_ne!(program.block_of(1), program.block_of(3));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    instrs: Vec<Instr>,
    /// `block_of[pc]` is the basic-block id containing `pc`.
    block_of: Vec<u32>,
    blocks: Vec<BasicBlock>,
}

impl Program {
    /// Builds a program from an instruction sequence, deriving basic blocks.
    ///
    /// Execution starts at address 0.
    ///
    /// # Panics
    ///
    /// Panics if `instrs` is empty or if any statically-known control-flow
    /// target is out of range — an assembled program must be self-contained.
    pub fn new(instrs: Vec<Instr>) -> Program {
        assert!(
            !instrs.is_empty(),
            "a program must contain at least one instruction"
        );
        let n = instrs.len() as u32;
        for (pc, i) in instrs.iter().enumerate() {
            if let Some(t) = i.static_target() {
                assert!(
                    t < n,
                    "instruction {pc} targets out-of-range address {t} (program length {n})"
                );
            }
        }

        // Leader algorithm.
        let mut leader = vec![false; instrs.len()];
        leader[0] = true;
        for (pc, i) in instrs.iter().enumerate() {
            if let Some(t) = i.static_target() {
                leader[t as usize] = true;
            }
            if i.is_control_flow() && pc + 1 < instrs.len() {
                leader[pc + 1] = true;
            }
        }

        let mut blocks = Vec::new();
        let mut block_of = vec![0u32; instrs.len()];
        let mut start = 0u32;
        for (pc, &lead) in leader.iter().enumerate().skip(1) {
            if lead {
                blocks.push(BasicBlock {
                    start,
                    end: pc as u32,
                });
                start = pc as u32;
            }
        }
        blocks.push(BasicBlock { start, end: n });
        for (id, b) in blocks.iter().enumerate() {
            for pc in b.start..b.end {
                block_of[pc as usize] = id as u32;
            }
        }

        Program {
            instrs,
            block_of,
            blocks,
        }
    }

    /// Number of instructions in the program.
    #[inline]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Returns `true` if the program has no instructions (never true for a
    /// constructed `Program`; present for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instruction at address `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    #[inline]
    pub fn instr(&self, pc: u32) -> Instr {
        self.instrs[pc as usize]
    }

    /// The full instruction array.
    #[inline]
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Number of static basic blocks.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The static basic blocks in address order.
    #[inline]
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// The basic-block id containing address `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    #[inline]
    pub fn block_of(&self, pc: u32) -> u32 {
        self.block_of[pc as usize]
    }

    /// Renders the program as a disassembly listing, one instruction per
    /// line, with block boundaries annotated.
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        for (pc, i) in self.instrs.iter().enumerate() {
            let block = self.block_of[pc];
            let marker = if self.blocks[block as usize].start == pc as u32 {
                format!("B{block}:")
            } else {
                String::new()
            };
            out.push_str(&format!("{marker:>8} {pc:6}  {i}\n"));
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Program({} instrs, {} blocks)",
            self.len(),
            self.num_blocks()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{AluOp, Cond, Reg};

    fn nop() -> Instr {
        Instr::Alu {
            op: AluOp::Add,
            rd: Reg::R0,
            rs: Reg::R0,
            rt: Reg::R0,
        }
    }

    #[test]
    fn straight_line_is_one_block() {
        let p = Program::new(vec![nop(), nop(), nop(), Instr::Halt]);
        assert_eq!(p.num_blocks(), 1);
        assert_eq!(p.blocks()[0], BasicBlock { start: 0, end: 4 });
        for pc in 0..4 {
            assert_eq!(p.block_of(pc), 0);
        }
    }

    #[test]
    fn branch_splits_blocks() {
        // 0: nop
        // 1: beq r0,r0 -> 4
        // 2: nop        (leader: follows branch)
        // 3: nop
        // 4: halt       (leader: branch target)
        let p = Program::new(vec![
            nop(),
            Instr::Branch {
                cond: Cond::Eq,
                rs: Reg::R0,
                rt: Reg::R0,
                target: 4,
            },
            nop(),
            nop(),
            Instr::Halt,
        ]);
        assert_eq!(p.num_blocks(), 3);
        assert_eq!(p.block_of(0), p.block_of(1));
        assert_ne!(p.block_of(1), p.block_of(2));
        assert_eq!(p.block_of(2), p.block_of(3));
        assert_ne!(p.block_of(3), p.block_of(4));
    }

    #[test]
    fn backward_branch_target_is_leader() {
        // loop: 0: nop; 1: bne -> 0; 2: halt
        let p = Program::new(vec![
            nop(),
            Instr::Branch {
                cond: Cond::Ne,
                rs: Reg::R1,
                rt: Reg::R0,
                target: 0,
            },
            Instr::Halt,
        ]);
        assert_eq!(p.num_blocks(), 2);
        assert_eq!(p.blocks()[0], BasicBlock { start: 0, end: 2 });
    }

    #[test]
    fn blocks_partition_program() {
        let p = Program::new(vec![
            nop(),
            Instr::Jump { target: 3 },
            nop(),
            Instr::Branch {
                cond: Cond::Lt,
                rs: Reg::R1,
                rt: Reg::R2,
                target: 0,
            },
            Instr::Halt,
        ]);
        // Blocks must tile [0, len) without gaps or overlap.
        let mut covered = 0u32;
        for b in p.blocks() {
            assert_eq!(b.start, covered);
            assert!(b.end > b.start);
            covered = b.end;
        }
        assert_eq!(covered, p.len() as u32);
    }

    #[test]
    #[should_panic(expected = "at least one instruction")]
    fn empty_program_panics() {
        let _ = Program::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn out_of_range_target_panics() {
        let _ = Program::new(vec![Instr::Jump { target: 9 }, Instr::Halt]);
    }

    #[test]
    fn disassembly_mentions_every_block() {
        let p = Program::new(vec![nop(), Instr::Jump { target: 0 }, Instr::Halt]);
        let text = p.disassemble();
        for id in 0..p.num_blocks() {
            assert!(
                text.contains(&format!("B{id}:")),
                "missing B{id} in:\n{text}"
            );
        }
    }
}
