//! Design-space exploration: the motivating use-case for sampled
//! simulation.
//!
//! ```text
//! cargo run --release --example design_space [scale]
//! ```
//!
//! An architect comparing L2 cache sizes cannot afford full detailed
//! simulation of every candidate. This example sweeps four L2 capacities
//! over two memory-sensitive workloads, evaluating each design point both
//! exhaustively and with PGSS-Sim, and shows that PGSS preserves the
//! *design ordering* (which cache wins, and roughly by how much) at a small
//! fraction of the detailed-simulation cost.
//!
//! Every (workload × L2 size × technique) cell is one [`pgss::campaign`]
//! job with its own [`MachineConfig`], so the whole sweep — including the
//! expensive exhaustive baselines — runs in parallel with deterministic
//! output ordering.

use pgss::{campaign, FullDetailed, PgssSim};
use pgss_cpu::{CacheConfig, MachineConfig};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    let l2_sizes: [u64; 4] = [256 << 10, 512 << 10, 1 << 20, 4 << 20];
    let workloads = [pgss_workloads::art(scale), pgss_workloads::equake(scale)];

    // One job per (workload, L2 size, technique); per-cell machine config.
    let full = FullDetailed::new();
    let pgss = PgssSim::new();
    let mut jobs: Vec<campaign::Job> = Vec::new();
    for workload in &workloads {
        for &l2 in &l2_sizes {
            let config = MachineConfig {
                l2: CacheConfig {
                    size_bytes: l2,
                    ..CacheConfig::l2_default()
                },
                ..MachineConfig::default()
            };
            jobs.push(campaign::Job {
                workload,
                technique: &full,
                config,
            });
            jobs.push(campaign::Job {
                workload,
                technique: &pgss,
                config,
            });
        }
    }
    println!(
        "running {} design-space cells as a parallel campaign ...",
        jobs.len()
    );
    // Positional indexing below needs the full grid, so an incomplete
    // campaign (some cell exhausted its retries) is fatal here; the error
    // names the first ledger entry.
    let cells = match campaign::run(&jobs).into_cells() {
        Ok(cells) => cells,
        Err(e) => {
            eprintln!("design-space campaign failed: {e}");
            std::process::exit(1);
        }
    };

    // Cells arrive in job order: workload-major, then L2 size, then
    // (FullDetailed, PgssSim) pairs.
    for (wi, workload) in workloads.iter().enumerate() {
        println!("\n=== {} ===", workload.name());
        println!(
            "{:<10} {:>10} {:>10} {:>8} {:>14}",
            "L2 size", "true IPC", "PGSS IPC", "error", "detailed ops"
        );
        let mut true_ipcs = Vec::new();
        let mut pgss_ipcs = Vec::new();
        for (li, &l2) in l2_sizes.iter().enumerate() {
            let base = wi * l2_sizes.len() * 2 + li * 2;
            let truth = &cells[base].estimate;
            let est = &cells[base + 1].estimate;
            println!(
                "{:<10} {:>10.4} {:>10.4} {:>7.2}% {:>14}",
                format!("{} KiB", l2 >> 10),
                truth.ipc,
                est.ipc,
                pgss::relative_error(est.ipc, truth.ipc) * 100.0,
                est.detailed_ops(),
            );
            true_ipcs.push(truth.ipc);
            pgss_ipcs.push(est.ipc);
        }
        let true_order = order(&true_ipcs);
        let pgss_order = order(&pgss_ipcs);
        println!(
            "design ordering preserved: {} ({:?} vs {:?})",
            if true_order == pgss_order {
                "YES"
            } else {
                "NO"
            },
            true_order,
            pgss_order
        );
        let true_gain = true_ipcs.last().unwrap() / true_ipcs.first().unwrap();
        let pgss_gain = pgss_ipcs.last().unwrap() / pgss_ipcs.first().unwrap();
        println!("speedup of largest vs smallest L2: true {true_gain:.2}x, PGSS {pgss_gain:.2}x");
    }
}

/// Ranks design points from worst to best IPC.
fn order(ipcs: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..ipcs.len()).collect();
    idx.sort_by(|&a, &b| ipcs[a].partial_cmp(&ipcs[b]).expect("finite IPC"));
    idx
}
