//! Phase explorer: watch the paper's online phase detector work.
//!
//! ```text
//! cargo run --release --example phase_explorer [benchmark] [scale]
//! ```
//!
//! Profiles a benchmark at 100k-op granularity, classifies every interval
//! with the hashed-BBV phase table (0.05π threshold), and prints a phase
//! timeline plus per-phase IPC statistics — the view PGSS-Sim steers by.

use pgss::analysis::interval_profile;
use pgss::PhaseTable;
use pgss_cpu::MachineConfig;
use pgss_stats::Welford;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "256.bzip2".to_string());
    let scale: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    let Some(workload) = pgss_workloads::by_name(&name, scale) else {
        eprintln!(
            "unknown benchmark {name}; try one of {:?}",
            pgss_workloads::SUITE_NAMES
        );
        std::process::exit(1);
    };

    println!("profiling {name} at 100k-op intervals ...");
    let profile = interval_profile(&workload, &MachineConfig::default(), 100_000, 1);

    let mut table = PhaseTable::new(pgss::threshold(0.05));
    let mut timeline = String::new();
    let mut per_phase: Vec<Welford> = Vec::new();
    for s in &profile {
        let c = table.classify(&s.bbv, s.ops);
        if c.created {
            per_phase.push(Welford::new());
        }
        per_phase[c.phase].push(s.ipc);
        // One timeline glyph per interval: A, B, C, … per phase.
        timeline.push(glyph(c.phase));
    }

    println!("\nphase timeline (one glyph per 100k ops):");
    for chunk in timeline.as_bytes().chunks(80) {
        println!("  {}", std::str::from_utf8(chunk).expect("ascii glyphs"));
    }

    println!("\nper-phase statistics:");
    println!(
        "{:<6} {:>10} {:>10} {:>10} {:>10}",
        "phase", "intervals", "weight", "mean IPC", "IPC stddev"
    );
    let weights = table.weights();
    for (i, (p, stats)) in table.phases().iter().zip(&per_phase).enumerate() {
        println!(
            "{:<6} {:>10} {:>9.1}% {:>10.3} {:>10.3}",
            glyph(i),
            p.intervals,
            weights[i] * 100.0,
            stats.mean(),
            stats.population_stddev(),
        );
    }
    println!(
        "\n{} phases, {} transitions over {} intervals",
        table.phases().len(),
        table.changes(),
        profile.len()
    );
}

fn glyph(phase: usize) -> char {
    let glyphs = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
    glyphs.as_bytes()[phase % glyphs.len()] as char
}
