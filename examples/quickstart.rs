//! Quickstart: estimate a benchmark's IPC with PGSS-Sim and compare against
//! full detailed simulation.
//!
//! ```text
//! cargo run --release --example quickstart [scale]
//! ```
//!
//! The example builds the synthetic `164.gzip` workload, runs the paper's
//! best-overall PGSS configuration (1M-op BBV period, 0.05π threshold), and
//! prints the estimate, its error against exhaustive simulation, and the
//! detailed-simulation savings.

use pgss::{FullDetailed, PgssSim, Technique};

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.25);
    println!("building 164.gzip at scale {scale} ...");
    let workload = pgss_workloads::gzip(scale);
    println!("  {} instructions (nominal)", workload.nominal_ops());

    println!("running full detailed simulation (the expensive ground truth) ...");
    let truth = FullDetailed::new().ground_truth(&workload);
    println!("  true IPC = {:.4} over {} instructions", truth.ipc, truth.total_ops);

    println!("running PGSS-Sim (1M-op BBV period, 0.05π threshold) ...");
    let estimate = PgssSim::new().run(&workload);
    let phases = estimate.phases.as_ref().expect("PGSS reports phases");
    println!("  estimated IPC = {:.4}", estimate.ipc);
    println!("  error         = {:.2}%", estimate.error_vs(&truth) * 100.0);
    println!("  phases found  = {} ({} transitions)", phases.phases, phases.changes);
    println!("  samples taken = {} (1k measured + 3k warming each)", estimate.samples);
    println!(
        "  detailed simulation: {} of {} instructions ({:.3}% — {}x less than full detail)",
        estimate.detailed_ops(),
        truth.total_ops,
        estimate.detailed_ops() as f64 / truth.total_ops as f64 * 100.0,
        truth.total_ops / estimate.detailed_ops().max(1),
    );
}
