//! Quickstart: estimate a benchmark's IPC with PGSS-Sim and compare against
//! full detailed simulation.
//!
//! ```text
//! cargo run --release --example quickstart [scale]
//! ```
//!
//! The example builds the synthetic `164.gzip` workload, then runs a small
//! *campaign* — PGSS-Sim (the paper's best-overall configuration) and
//! SMARTS side by side, fanned across the host's cores — and judges both
//! against exhaustive simulation, including each run's [`pgss::RunTrace`]
//! of what the shared sampling engine executed.

use pgss::{campaign, FullDetailed, PgssSim, Smarts, Technique};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    println!("building 164.gzip at scale {scale} ...");
    let workload = pgss_workloads::gzip(scale);
    println!("  {} instructions (nominal)", workload.nominal_ops());

    println!("running full detailed simulation (the expensive ground truth) ...");
    let truth = FullDetailed::new().ground_truth(&workload);
    println!(
        "  true IPC = {:.4} over {} instructions",
        truth.ipc, truth.total_ops
    );

    println!("running the sampled techniques as a parallel campaign ...");
    let pgss = PgssSim::new();
    let smarts = Smarts {
        period_ops: 100_000,
        ..Smarts::default()
    };
    let techniques: Vec<&(dyn Technique + Sync)> = vec![&pgss, &smarts];
    let workloads = [workload];
    let jobs = campaign::grid(&workloads, &techniques, Default::default());
    let report = campaign::run(&jobs);
    if !report.is_complete() {
        eprintln!("campaign failure ledger:\n{}", report.ledger());
    }
    for cell in &report.cells {
        let est = &cell.estimate;
        println!("\n{}:", cell.technique);
        println!("  estimated IPC = {:.4}", est.ipc);
        println!("  error         = {:.2}%", est.error_vs(&truth) * 100.0);
        if let Some(phases) = &est.phases {
            println!(
                "  phases found  = {} ({} transitions)",
                phases.phases, phases.changes
            );
        }
        println!(
            "  samples taken = {} (1k measured + 3k warming each)",
            est.samples
        );
        println!(
            "  detailed simulation: {} of {} instructions ({:.3}% — {}x less than full detail)",
            est.detailed_ops(),
            truth.total_ops,
            est.detailed_ops() as f64 / truth.total_ops as f64 * 100.0,
            truth.total_ops / est.detailed_ops().max(1),
        );
        let t = &cell.trace;
        println!(
            "  engine trace: {} segments ({} functional / {} warming / {} measured), \
             {} samples, {} skipped (CI met {}, spacing {})",
            t.total_segments(),
            t.segments[pgss_cpu::Mode::Functional as usize],
            t.segments[pgss_cpu::Mode::DetailedWarming as usize],
            t.segments[pgss_cpu::Mode::DetailedMeasured as usize],
            t.samples_taken,
            t.samples_skipped(),
            t.skipped_ci_met,
            t.skipped_spacing,
        );
        if let Some(ci) = est.ci {
            println!(
                "  95% interval  = {:.4} ± {:.4} ({})",
                ci.mean,
                ci.half_width,
                if ci.contains(truth.ipc) {
                    "covers the true IPC"
                } else {
                    "misses the true IPC"
                }
            );
        }
    }

    // Every campaign also carries a structured metrics report — the same
    // numbers as above, per cell and campaign-wide, exportable as stable
    // JSONL (byte-identical regardless of PGSS_WORKERS). See the
    // `campaign_metrics` bin for the full table + `--jsonl` export.
    let scope = report
        .metrics
        .scope("campaign")
        .expect("campaign scope always present");
    println!(
        "\ncampaign metrics: {} jobs, {} ok, {} retries, {} metric scopes exported",
        scope.counter("campaign.jobs"),
        scope.counter("campaign.cells.ok"),
        scope.counter("campaign.retries"),
        report.metrics.scopes.len(),
    );
}
