//! Campaign-as-a-service in one file: start an in-process `pgss-serve`
//! daemon, submit a small suite × technique grid, stream per-cell
//! results as they finish (out of order), and fetch the canonical
//! campaign artifact at the end.
//!
//! ```sh
//! cargo run --release --example campaign_server
//! ```
//!
//! The same protocol works across processes: run the `pgss_serve` binary
//! (`cargo run --release -p pgss-serve --bin pgss_serve -- --store DIR`)
//! and point `Client::connect_tcp` at the printed address. Kill the
//! daemon mid-campaign and restart it on the same store: the job resumes
//! where it left off, never recomputing a finished cell.

use pgss_serve::{Client, Listen, ServeConfig, Server};

const SPEC: &str = r#"{
    "suite":[{"name":"164.gzip","scale":0.01},{"name":"183.equake","scale":0.01}],
    "techniques":[{"kind":"smarts","period_ops":100000},
                  {"kind":"pgss","ff_ops":100000,"spacing_ops":200000}],
    "stride":50000}"#;

fn main() {
    let store = std::env::temp_dir().join(format!("pgss-serve-example-{}", std::process::id()));

    let cfg = ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    };
    let server = Server::start(&store, Listen::Tcp("127.0.0.1:0".into()), cfg)
        .expect("server starts on an ephemeral port");
    println!("server listening on {}", server.addr());

    let mut client = Client::connect(server.addr()).expect("connect");
    let job = client.submit("example", SPEC).expect("submit");
    println!("submitted job {job}");

    // Watch streams completions as they happen — with two workers the
    // indices arrive out of order; durability and the final artifact are
    // unaffected.
    let watcher = Client::connect(server.addr()).expect("connect watcher");
    let phase = watcher
        .watch(&job, |ev| {
            println!(
                "  cell {:>2} ({}/{})  {} × {}  ipc {:.4}",
                ev.index, ev.done, ev.total, ev.workload, ev.technique, ev.ipc
            );
            true
        })
        .expect("watch");
    println!("job finished: {phase}");

    let report = client.report(&job).expect("report");
    println!("canonical artifact ({} lines); header:", report.len());
    println!("  {}", report[0]);

    let metrics = client.metrics().expect("metrics");
    println!("server metrics: {metrics}");

    client.shutdown().expect("shutdown");
    server.wait();
    let _ = std::fs::remove_dir_all(&store);
}
