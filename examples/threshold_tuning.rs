//! Threshold tuning: Section 4 of the paper, as a tool.
//!
//! ```text
//! cargo run --release --example threshold_tuning [benchmark] [scale]
//! ```
//!
//! The hardest PGSS parameter is the BBV-change threshold. This example
//! reproduces the paper's tuning methodology on one benchmark: it computes
//! consecutive-interval (ΔBBV, ΔIPC) pairs, sweeps candidate thresholds,
//! reports the detection and false-positive rates at each (Figs. 8–9), and
//! recommends the threshold that catches ≥90 % of significant changes with
//! the fewest false positives.

use pgss::analysis::{deltas, detection_rate, false_positive_rate, interval_profile};
use pgss_cpu::MachineConfig;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "164.gzip".to_string());
    let scale: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    let Some(workload) = pgss_workloads::by_name(&name, scale) else {
        eprintln!(
            "unknown benchmark {name}; try one of {:?}",
            pgss_workloads::SUITE_NAMES
        );
        std::process::exit(1);
    };

    println!("profiling {name} at 100k-op intervals ...");
    let profile = interval_profile(&workload, &MachineConfig::default(), 100_000, 1);
    let d = deltas(&profile);
    println!("{} consecutive-interval changes\n", d.len());

    const SIGMA: f64 = 0.3; // "significant" = IPC moved by ≥ 0.3 benchmark σ
    println!(
        "{:>13} {:>11} {:>16}",
        "threshold(π)", "caught", "false positives"
    );
    let mut recommended: Option<(f64, f64)> = None;
    for i in 1..=10 {
        let frac = i as f64 * 0.025;
        let rad = pgss::threshold(frac);
        let caught = detection_rate(&d, rad, SIGMA);
        let fp = false_positive_rate(&d, rad, SIGMA);
        println!(
            "{:>13.3} {:>10.1}% {:>15.1}%",
            frac,
            caught.unwrap_or(f64::NAN) * 100.0,
            fp.unwrap_or(f64::NAN) * 100.0
        );
        if let (Some(c), Some(f)) = (caught, fp) {
            if c >= 0.9 && recommended.is_none_or(|(_, best_fp)| f < best_fp) {
                recommended = Some((frac, f));
            }
        }
    }
    match recommended {
        Some((frac, fp)) => println!(
            "\nrecommended threshold: {frac:.3}π (catches ≥90% of ≥{SIGMA}σ changes, {:.1}% false positives)",
            fp * 100.0
        ),
        None => println!(
            "\nno threshold catches ≥90% of ≥{SIGMA}σ changes — this workload's \
             performance shifts without code-signature shifts; use the paper's 0.05π default"
        ),
    }
}
