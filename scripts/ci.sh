#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, tests.
# Everything runs offline — the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo test --workspace -q"
cargo test --workspace -q

echo "== cargo test -p pgss-ckpt -q (checkpoint codec + store, incl. corruption injection)"
cargo test -p pgss-ckpt -q

echo "== cargo test --test checkpoints -q (snapshot round-trip + bit-exact acceleration)"
cargo test --release --test checkpoints -q

echo "== fault-injection suite (panic isolation, corruption quarantine, store I/O faults)"
cargo test --release --features fault-inject --test fault_injection -q
cargo test -p pgss-ckpt --features fault-inject -q
cargo test -p pgss --release --features fault-inject -q

echo "== cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "CI gate passed."
