#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, tests.
# Everything runs offline — the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo test --workspace -q"
cargo test --workspace -q

echo "CI gate passed."
