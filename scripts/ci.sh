#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, tests.
# Everything runs offline — the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo test --workspace -q (default features)"
cargo test --workspace -q

echo "== cargo test -p pgss-ckpt -q (checkpoint codec + store, incl. corruption injection)"
cargo test -p pgss-ckpt -q

echo "== cargo test --test checkpoints -q (snapshot round-trip + bit-exact acceleration)"
cargo test --release --test checkpoints -q

echo "== statistical validation smoke (12-rep debug subset: all estimators + verdicts)"
cargo test --test statistical_validation -q

echo "== statistical validation (200-rep CI-coverage sweep, release)"
cargo test --release --test statistical_validation -q

echo "== metrics goldens (JSONL byte-identical across worker counts, schema pin)"
cargo test --release --test metrics_golden -q

echo "== campaign server (pgss-serve: SIGKILL resume, quotas, byte-identical reports)"
# Timeout-wrapped: a scheduler wedge in the daemon would otherwise hang
# the whole gate instead of failing it.
timeout 1800 cargo test --release -p pgss-serve -q
timeout 1800 cargo test --release --test serve_resilience --test serve_equivalence -q

echo "== wire-protocol fuzz (byte soup, truncated frames, deep nesting, slow loris)"
timeout 900 cargo test --release --test serve_protocol_fuzz -q

echo "== chaos suite (leases, drain, disk budget, torn writes, kill -9 mid-GC)"
timeout 1800 cargo test --release --features fault-inject --test serve_chaos -q

echo "== store-GC smoke (quarantine survives a sweep; budget frees after gc)"
timeout 600 cargo test --release -p pgss-ckpt -q -- gc_ budget_

echo "== pgss-stats property tests (merge algebra behind the metrics layer)"
cargo test --release -p pgss-stats --test properties -q

echo "== fault-injection suite (panic isolation, corruption quarantine, store I/O faults)"
cargo test --release --features fault-inject --test fault_injection -q
cargo test -p pgss-ckpt --features fault-inject -q
cargo test -p pgss --release --features fault-inject -q

echo "== coverage ratchet (cargo llvm-cov, when installed)"
if command -v cargo-llvm-cov >/dev/null 2>&1; then
    baseline=$(grep -v '^#' scripts/coverage-baseline.txt | tail -1)
    cov=$(cargo llvm-cov --workspace --summary-only --json -q |
        python3 -c 'import json,sys; print(json.load(sys.stdin)["data"][0]["totals"]["lines"]["percent"])')
    python3 - "$cov" "$baseline" <<'EOF'
import sys
cov, base = float(sys.argv[1]), float(sys.argv[2])
floor = base - 0.5
print(f"line coverage {cov:.2f}% (baseline {base:.2f}%, ratchet floor {floor:.2f}%)")
if cov < floor:
    sys.exit("coverage regressed below the ratchet floor")
if cov > base + 1.0:
    print(f"coverage grew; consider raising scripts/coverage-baseline.txt to {cov:.1f}")
EOF
else
    echo "cargo-llvm-cov not installed; skipping coverage ratchet"
fi

echo "== perf ratchet (decoded core vs reference interpreter, when python3 is available)"
if command -v python3 >/dev/null 2>&1; then
    perf_out=$(mktemp -d)
    trap 'rm -rf "$perf_out"' EXIT
    cargo run --release -q -p pgss-bench --bin perf -- --smoke --out "$perf_out"
    baseline=$(grep -v '^#' scripts/perf-baseline.txt | tail -1)
    python3 - "$baseline" "$perf_out"/BENCH_*.json <<'EOF'
import json, math, sys

base = float(sys.argv[1])
speedups = []
for path in sys.argv[2:]:
    with open(path) as f:
        doc = json.load(f)
    assert doc["schema"] == 1, f"{path}: unknown schema {doc['schema']!r}"
    assert isinstance(doc["name"], str) and doc["name"], f"{path}: missing name"
    assert doc["modes"], f"{path}: empty modes array"
    for m in doc["modes"]:
        for key in ("mode", "ops", "decoded_wall_ns", "reference_wall_ns",
                    "decoded_ops_per_sec", "reference_ops_per_sec", "speedup"):
            assert key in m, f"{path}: mode entry missing {key!r}"
        assert m["ops"] > 0 and m["decoded_wall_ns"] and m["reference_wall_ns"], \
            f"{path}: degenerate {m['mode']} entry"
        if m["mode"] == "functional":
            speedups.append(m["speedup"])
assert speedups, "no functional-mode entries found"
geo = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
floor = base - 0.25
print(f"functional speedup geomean {geo:.2f}x over {len(speedups)} workloads "
      f"(baseline {base:.2f}x, ratchet floor {floor:.2f}x)")
if geo < floor:
    sys.exit("decoded-core throughput regressed below the ratchet floor")
if geo > base + 0.25:
    print(f"speedup grew; consider raising scripts/perf-baseline.txt to {geo:.2f}")
EOF
    rm -rf "$perf_out"
    trap - EXIT
else
    echo "python3 not installed; skipping perf ratchet"
fi

echo "== cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "CI gate passed."
