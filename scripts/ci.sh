#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, tests.
# Everything runs offline — the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo test --workspace -q (default features)"
cargo test --workspace -q

echo "== cargo test -p pgss-ckpt -q (checkpoint codec + store, incl. corruption injection)"
cargo test -p pgss-ckpt -q

echo "== cargo test --test checkpoints -q (snapshot round-trip + bit-exact acceleration)"
cargo test --release --test checkpoints -q

echo "== statistical validation (200-rep CI-coverage sweep, release)"
cargo test --release --test statistical_validation -q

echo "== metrics goldens (JSONL byte-identical across worker counts, schema pin)"
cargo test --release --test metrics_golden -q

echo "== pgss-stats property tests (merge algebra behind the metrics layer)"
cargo test --release -p pgss-stats --test properties -q

echo "== fault-injection suite (panic isolation, corruption quarantine, store I/O faults)"
cargo test --release --features fault-inject --test fault_injection -q
cargo test -p pgss-ckpt --features fault-inject -q
cargo test -p pgss --release --features fault-inject -q

echo "== coverage ratchet (cargo llvm-cov, when installed)"
if command -v cargo-llvm-cov >/dev/null 2>&1; then
    baseline=$(grep -v '^#' scripts/coverage-baseline.txt | tail -1)
    cov=$(cargo llvm-cov --workspace --summary-only --json -q |
        python3 -c 'import json,sys; print(json.load(sys.stdin)["data"][0]["totals"]["lines"]["percent"])')
    python3 - "$cov" "$baseline" <<'EOF'
import sys
cov, base = float(sys.argv[1]), float(sys.argv[2])
floor = base - 0.5
print(f"line coverage {cov:.2f}% (baseline {base:.2f}%, ratchet floor {floor:.2f}%)")
if cov < floor:
    sys.exit("coverage regressed below the ratchet floor")
if cov > base + 1.0:
    print(f"coverage grew; consider raising scripts/coverage-baseline.txt to {cov:.1f}")
EOF
else
    echo "cargo-llvm-cov not installed; skipping coverage ratchet"
fi

echo "== cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "CI gate passed."
