//! Umbrella package for the PGSS-Sim reproduction workspace.
//!
//! This crate exists so the repository root can host runnable
//! [`examples/`](https://doc.rust-lang.org/cargo/guide/project-layout.html)
//! and cross-crate integration tests in `tests/`. All functionality lives in
//! the member crates; the most useful entry point is the [`pgss`] crate.

pub use pgss;
pub use pgss_serve;
